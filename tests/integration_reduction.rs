//! Differential tests for the state-space reductions: ample-set
//! partial-order reduction and template-symmetry reduction must be
//! verdict-invisible. For every seeded random network, every goal
//! variant and every worker count 1–4, the reduced engines must return
//! the same status as the unreduced oracle — including on models built
//! to trip the conservative fallbacks (broadcast channels, committed and
//! urgent locations, urgent channels, property-visible components) — and
//! every reachability witness must realize into a concrete run the
//! independent replay validator accepts. The sweep also asserts that
//! both reductions actually fire somewhere, so the suite cannot rot into
//! vacuously comparing two unreduced runs.

use tempo_core::bip::BipSystemBuilder;
use tempo_core::expr::{Expr, Stmt};
use tempo_core::obs::{Budget, ExploreConfig};
use tempo_core::ta::{ChannelKind, ClockAtom, ModelChecker, Network, NetworkBuilder, StateFormula};
use tempo_core::witness::{realize, replay};

/// Deterministic splitmix/LCG-style generator: the differential sweep
/// must reproduce bit-identically from the seed alone.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0x1234_5678))
    }

    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 33
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn flag(&mut self) -> bool {
        self.below(2) == 1
    }
}

/// Builds a random network exercising every reduction code path:
///
/// - 2–3 replicated template automata (identical up to their identity
///   constant and private clock) pinging a monitor over a channel array
///   — symmetry-orbit fuel;
/// - 1–2 private-variable counter automata with internal clock-free
///   edges — ample-set fuel;
/// - a monitor whose middle location is sometimes committed or urgent,
///   on a channel that is sometimes broadcast and sometimes urgent —
///   the conservative-fallback paths;
/// - a goal that sometimes names a replica (pinning its identity) and
///   sometimes only monitor data.
fn random_model(seed: u64) -> (Network, StateFormula) {
    let mut rng = Rng::new(seed);
    let mut b = NetworkBuilder::new();
    let replicas = 2 + rng.below(2) as usize;
    let kind = if rng.flag() {
        ChannelKind::Broadcast
    } else {
        ChannelKind::Binary
    };
    let urgent_chan = rng.flag();
    let ping = b.channel_array("ping", replicas, kind, urgent_chan);

    // Replicated template: Idle --ping[i]!--> Busy --internal--> Idle.
    let guard_c = 1 + rng.below(3) as i64;
    let use_inv = rng.flag();
    let inv_c = guard_c + 1 + rng.below(2) as i64;
    let mut rep0 = None;
    let mut busy0 = None;
    for i in 0..replicas {
        let x = b.clock(&format!("x{i}"));
        let mut a = b.automaton(&format!("Rep{i}"));
        let idle = a.location("Idle");
        let busy = if use_inv {
            a.location_with_invariant("Busy", vec![ClockAtom::le(x, inv_c)])
        } else {
            a.location("Busy")
        };
        // Urgent channels forbid clock guards on synchronizing edges.
        let mut e = a
            .edge(idle, busy)
            .send_indexed(ping, Expr::konst(i as i64))
            .reset(x, 0);
        if !urgent_chan {
            e = e.guard_clock(ClockAtom::ge(x, guard_c));
        }
        e.done();
        a.edge(busy, idle).guard_clock(ClockAtom::ge(x, 1)).done();
        let id = a.done();
        if i == 0 {
            rep0 = Some(id);
            busy0 = Some(busy);
        }
    }

    // Monitor: counts pings via a select binding covering every identity
    // (the idiom symmetry reduction supports). A committed or urgent hop
    // location exercises the POR/symmetry fallbacks.
    let count = b.decls_mut().int_init("count", 0, 4, 0);
    let bump = Stmt::assign(count, Expr::var(count) + Expr::konst(1));
    let can_bump = Expr::var(count).lt(Expr::konst(4));
    let mut m = b.automaton("Monitor");
    let m0 = m.location("M0");
    match rng.below(3) {
        0 => {
            m.edge(m0, m0)
                .select(0, replicas as i64 - 1)
                .recv_indexed(ping, Expr::select(0))
                .guard_data(can_bump)
                .update(bump)
                .done();
        }
        style => {
            let hop = if style == 1 {
                m.committed_location("Hop")
            } else {
                m.urgent_location("Hop")
            };
            m.edge(m0, hop)
                .select(0, replicas as i64 - 1)
                .recv_indexed(ping, Expr::select(0))
                .guard_data(can_bump)
                .done();
            m.edge(hop, m0).update(bump).done();
        }
    }
    let monitor = m.done();
    let m_end = m0;

    // Counters: internal, clock-free, variable-disjoint — ample fuel.
    for k in 0..=rng.below(2) {
        let bound = 2 + rng.below(2) as i64;
        let v = b.decls_mut().int_init(&format!("c{k}"), 0, 3, 0);
        let mut a = b.automaton(&format!("Cnt{k}"));
        let l = a.location("L");
        a.edge(l, l)
            .guard_data(Expr::var(v).lt(Expr::konst(bound)))
            .update(Stmt::assign(v, Expr::var(v) + Expr::konst(1)))
            .done();
        a.done();
    }

    let goal = match rng.below(3) {
        0 => StateFormula::data(Expr::var(count).ge(Expr::konst(3))),
        1 => StateFormula::and(vec![
            StateFormula::at(monitor, m_end),
            StateFormula::data(Expr::var(count).ge(Expr::konst(4))),
        ]),
        // Naming a replica pins its identity: symmetry must shrink to
        // the remaining members (or switch itself off) — either way the
        // verdict must not move.
        _ => StateFormula::and(vec![
            StateFormula::at(rep0.expect("replicas >= 2"), busy0.expect("built")),
            StateFormula::data(Expr::var(count).ge(Expr::konst(2))),
        ]),
    };
    (b.build(), goal)
}

#[test]
fn por_and_symmetry_verdicts_match_unreduced_across_seeds_and_workers() {
    let mut ample_total = 0usize;
    let mut sym_total = 0usize;
    for seed in 0..48u64 {
        let (net, goal) = random_model(seed);
        let oracle = ModelChecker::new(&net)
            .with_config(ExploreConfig::unreduced())
            .reachable(&goal);
        assert_eq!(
            oracle.stats.por_ample + oracle.stats.sym_avoided,
            0,
            "seed={seed}: the unreduced oracle must not reduce"
        );
        let (oracle_dl, _) = ModelChecker::new(&net)
            .with_config(ExploreConfig::unreduced())
            .deadlock_free();
        for workers in 1..=4 {
            let res = ModelChecker::new(&net)
                .with_threads(workers)
                .reachable(&goal);
            assert_eq!(
                res.reachable, oracle.reachable,
                "seed={seed} workers={workers}: reachability verdict moved"
            );
            if res.reachable {
                let trace = res.trace.as_ref().expect("reachable verdicts carry traces");
                let concrete =
                    realize(&net, trace, &goal).expect("witness realizes into a concrete run");
                replay(&net, &concrete, Some(&goal)).expect("independent replay accepts");
            }
            ample_total += res.stats.por_ample;
            sym_total += res.stats.sym_avoided;

            let (dl, dl_stats) = ModelChecker::new(&net)
                .with_threads(workers)
                .deadlock_free();
            assert_eq!(
                dl.holds(),
                oracle_dl.holds(),
                "seed={seed} workers={workers}: deadlock verdict moved"
            );
            ample_total += dl_stats.por_ample;
            sym_total += dl_stats.sym_avoided;
        }
    }
    assert!(ample_total > 0, "POR never fired across the whole sweep");
    assert!(sym_total > 0, "symmetry never fired across the whole sweep");
}

#[test]
fn committed_states_fall_back_to_full_expansion() {
    // Two eligible counters plus a committed ping-pong automaton: while
    // the committed location is active POR must fall back, afterwards the
    // ample set fires — and the verdict matches the unreduced engine.
    let mut b = NetworkBuilder::new();
    for name in ["A", "B"] {
        let v = b.decls_mut().int_init(&format!("v{name}"), 0, 3, 0);
        let mut a = b.automaton(name);
        let l = a.location("L");
        a.edge(l, l)
            .guard_data(Expr::var(v).lt(Expr::konst(3)))
            .update(Stmt::assign(v, Expr::var(v) + Expr::konst(1)))
            .done();
        a.done();
    }
    let mut c = b.automaton("Committed");
    let c0 = c.committed_location("C0");
    let c1 = c.location("C1");
    c.edge(c0, c1).done();
    let cid = c.done();
    let net = b.build();

    let goal = StateFormula::at(cid, c1);
    let oracle = ModelChecker::new(&net)
        .with_config(ExploreConfig::unreduced())
        .reachable(&goal);
    let res = ModelChecker::new(&net).reachable(&goal);
    assert_eq!(res.reachable, oracle.reachable);
    assert!(
        res.stats.por_fallback > 0,
        "the committed initial state must be expanded fully"
    );
}

#[test]
fn bip_persistent_sets_agree_with_full_exploration_across_seeds() {
    let mut reduced_fired = 0usize;
    for seed in 0..48u64 {
        let mut rng = Rng::new(seed ^ 0xB1B0);
        let comps = 2 + rng.below(2) as usize;
        // A quarter of the seeds couple the components through their
        // guards, forcing the persistent-set analysis to stand down.
        let coupled = rng.below(4) == 0;
        let mut b = BipSystemBuilder::new();
        let vars: Vec<_> = (0..comps)
            .map(|k| b.decls_mut().int(&format!("x{k}"), 0, 3))
            .collect();
        let mut ports = Vec::new();
        for k in 0..comps {
            let mut c = b.component(&format!("C{k}"));
            let s = c.state("S");
            let p = c.port("inc");
            c.transition(s, s, p);
            c.done();
            ports.push(p);
        }
        for (k, &p) in ports.iter().enumerate() {
            let bound = 1 + rng.below(3) as i64;
            let i = b.rendezvous(&format!("inc{k}"), &[p]);
            let mut guard = Expr::var(vars[k]).lt(Expr::konst(bound));
            if coupled {
                guard = guard & Expr::var(vars[(k + 1) % comps]).ge(Expr::konst(0));
            }
            b.set_guard(i, guard);
            b.set_update(
                i,
                Stmt::assign(vars[k], Expr::var(vars[k]) + Expr::konst(1)),
            );
        }
        let sys = b.build();
        let full = sys.find_deadlock_with(ExploreConfig::unreduced(), &Budget::unlimited());
        let reduced = sys.find_deadlock_with(ExploreConfig::default(), &Budget::unlimited());
        assert_eq!(
            full.value().is_some(),
            reduced.value().is_some(),
            "seed={seed}: deadlock existence moved"
        );
        assert!(
            reduced.report().states_explored <= full.report().states_explored,
            "seed={seed}: the reduction must never explore more"
        );
        reduced_fired += reduced.report().por_ample_states as usize;
    }
    assert!(
        reduced_fired > 0,
        "the persistent-set reduction never fired across the sweep"
    );
}
