//! Integration tests of the out-of-core state store: a spilled
//! exploration must be *indistinguishable* from the all-in-RAM run —
//! same verdict, same witness trace, byte-identical `Stats` — while the
//! `RunReport` proves real work went to disk. Corruption (torn tails,
//! bit flips, unusable scratch paths) must surface as typed
//! [`SpillError`]s, never as a wrong verdict.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use tempo_core::obs::{Budget, ExploreConfig, SpillConfig, SpillStore, StateStore};
use tempo_core::ta::{Explorer, ModelChecker, SpillError, StateFormula, SymState, Trace};
use tempo_core::witness::certify::{certified_reachable_with, Certificate};
use tempo_core::witness::format;
use tempo_models::{train_gate, wcet_program};

/// A fresh scratch directory under the system temp dir.
fn unique_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "tempo-outofcore-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Step-by-step trace equality (`Trace` deliberately has no `PartialEq`;
/// the comparison spelled out keeps failures readable).
fn assert_same_trace(a: &Option<Trace>, b: &Option<Trace>) {
    match (a, b) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            assert_eq!(a.steps.len(), b.steps.len(), "trace lengths differ");
            for (i, (x, y)) in a.steps.iter().zip(&b.steps).enumerate() {
                assert_eq!(x.action, y.action, "step {i}: actions differ");
                assert_eq!(x.state, y.state, "step {i}: states differ");
            }
        }
        _ => panic!("one run produced a trace, the other did not"),
    }
}

/// Acceptance criterion: with a resident budget far below the state
/// count, the sequential engine completes the train-gate with verdict,
/// witness trace and `Stats` byte-identical to the all-in-RAM run, and
/// the `RunReport` shows states actually spilled and faulted.
#[test]
fn sequential_spill_matches_resident_run_exactly() {
    let dir = unique_dir("seq");
    for n in [3, 5] {
        let tg = train_gate(n);
        let goal = StateFormula::and(vec![
            StateFormula::at(tg.trains[0], tg.train_locs.stop),
            StateFormula::at(tg.trains[1], tg.train_locs.cross),
        ]);

        let ram = ModelChecker::new(&tg.net)
            .try_reachable_governed(&goal, &Budget::unlimited())
            .expect("resident store cannot fail");
        let spill_cfg = ExploreConfig::default().with_spill(&dir, 16);
        let spilled = ModelChecker::new(&tg.net)
            .with_config(spill_cfg)
            .try_reachable_governed(&goal, &Budget::unlimited())
            .expect("spill run completes");

        assert_eq!(
            spilled.value().reachable,
            ram.value().reachable,
            "N={n}: verdict must not depend on where states live"
        );
        assert_eq!(
            spilled.value().stats,
            ram.value().stats,
            "N={n}: Stats must be byte-identical"
        );
        assert_same_trace(&spilled.value().trace, &ram.value().trace);

        let (rr, sr) = (ram.report(), spilled.report());
        assert_eq!(rr.spilled_states, 0, "resident run spills nothing");
        assert!(
            sr.spilled_states > 0,
            "N={n}: the tiny budget must force spilling"
        );
        assert!(sr.spill_bytes > 0, "spilled states occupy log bytes");
        assert!(
            sr.spill_faults > 0,
            "N={n}: inclusion checks and the trace rebuild must fault"
        );
        assert_eq!(sr.states_explored, rr.states_explored);
        assert_eq!(sr.states_stored, rr.states_stored);
    }

    // Safety (full fixpoint, no early exit) under spilling, same story.
    let tg = train_gate(4);
    let ram = ModelChecker::new(&tg.net)
        .try_always_governed(&tg.safety(), &Budget::unlimited())
        .expect("resident store cannot fail");
    let spilled = ModelChecker::new(&tg.net)
        .with_config(ExploreConfig::default().with_spill(&dir, 8))
        .try_always_governed(&tg.safety(), &Budget::unlimited())
        .expect("spill run completes");
    assert_eq!(spilled.value().0.holds(), ram.value().0.holds());
    assert_eq!(spilled.value().1, ram.value().1, "Stats must match");
    assert!(spilled.report().spilled_states > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The certificate pipeline on top of a spilled run: the witness trace
/// faults its states back from disk, realizes to a concrete run, and
/// the certificate replays — byte-identical to the resident run's.
#[test]
fn spilled_run_produces_a_replayable_certificate() {
    let dir = unique_dir("cert");
    let tg = train_gate(3);
    let goal = tg.cross(0);
    let budget = Budget::unlimited();

    let (ram_out, ram_cert) =
        certified_reachable_with(&tg.net, &goal, ExploreConfig::default(), &budget)
            .expect("resident certified run");
    let spill_cfg = ExploreConfig::default().with_spill(&dir, 4);
    let (out, cert) = certified_reachable_with(&tg.net, &goal, spill_cfg, &budget)
        .expect("spilled certified run: realization and replay validate");

    assert!(out.value().reachable);
    assert_eq!(out.value().reachable, ram_out.value().reachable);
    assert!(out.report().spilled_states > 0, "budget 4 must spill");
    let (cert, ram_cert) = (cert.expect("witness"), ram_cert.expect("witness"));
    cert.validate(&tg.net, &goal)
        .expect("spilled-run certificate replays independently");
    assert_eq!(
        format::render(&Certificate::Trace(cert)),
        format::render(&Certificate::Trace(ram_cert)),
        "the certificate must not depend on where states lived"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A scratch path that cannot be used (a regular file where the spill
/// directory should go) fails loudly with a typed I/O error from the
/// `try_` entry point — never a panic, never a silent resident fallback.
#[test]
fn unusable_spill_path_is_a_typed_error() {
    let dir = unique_dir("badpath");
    let file = dir.join("occupied");
    std::fs::write(&file, b"not a directory").unwrap();
    let tg = train_gate(2);
    let err = ModelChecker::new(&tg.net)
        .with_config(ExploreConfig::default().with_spill(&file, 0))
        .try_reachable_governed(&tg.cross(0), &Budget::unlimited())
        .expect_err("a file blocking the spill dir must fail");
    assert!(
        matches!(err, SpillError::Io { .. }),
        "expected SpillError::Io, got {err:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Acceptance criterion: truncating the state log mid-record makes the
/// next fault fail with [`SpillError::Torn`]; flipping a payload bit
/// fails with [`SpillError::Corrupt`]. Exercised on real engine states
/// ([`SymState`] through its production codec), not a toy type.
#[test]
fn torn_and_corrupt_records_fail_loudly_on_engine_states() {
    let dir = unique_dir("torn");
    let tg = train_gate(2);
    let explorer = Explorer::new(&tg.net);
    let init = explorer.initial_state();
    let succ: Vec<SymState> = explorer
        .successors(&init)
        .into_iter()
        .map(|(_, s)| s)
        .collect();
    assert!(!succ.is_empty());

    // Budget 0: every inserted state goes straight to disk.
    let cfg = SpillConfig {
        path: dir.clone(),
        resident_budget: 0,
    };
    let mut store: SpillStore<SymState, usize> = SpillStore::create(&cfg).unwrap();
    let first = store.insert(init.clone(), 0).unwrap();
    for (i, s) in succ.iter().enumerate() {
        store.insert(s.clone(), i + 1).unwrap();
    }
    let last = store.insert(succ[0].clone(), 99).unwrap();
    assert_eq!(store.load(first).unwrap(), init, "round trip before harm");

    // Tear the tail off the last record: its fault must report Torn
    // with the offsets, while earlier intact records still load.
    let log = store.log_path().to_path_buf();
    let len = std::fs::metadata(&log).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&log).unwrap();
    f.set_len(len - 3).unwrap();
    drop(f);
    match store.load(last) {
        Err(SpillError::Torn { .. }) => {}
        other => panic!("expected Torn, got {other:?}"),
    }
    assert_eq!(store.load(first).unwrap(), init, "prefix stays readable");

    // Flip one payload bit of the *first* record: checksum or content
    // fingerprint must catch it as Corrupt (or Torn if the flip lands
    // in a length prefix) — never return an altered state.
    let mut bytes = std::fs::read(&log).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&log, &bytes).unwrap();
    let mut hit_error = false;
    for id in [first, last] {
        match store.load(id) {
            Ok(state) => assert!(
                state == init || succ.contains(&state),
                "a load that succeeds must return the original state"
            ),
            Err(SpillError::Corrupt { .. } | SpillError::Torn { .. }) => hit_error = true,
            Err(e) => panic!("unexpected error class: {e:?}"),
        }
    }
    assert!(hit_error, "the flipped bit must be detected somewhere");
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Verdict identity across worker counts and resident budgets: for
    /// any thread count 1–4 and any tiny budget, spilled and resident
    /// runs agree on reachability of both satisfiable and unsatisfiable
    /// goals on the train-gate, and on WCET termination bounds.
    #[test]
    fn spill_verdicts_match_resident_at_any_worker_count(
        threads in 1_usize..=4,
        budget in 0_usize..48,
        n in 2_usize..=3,
    ) {
        let dir = unique_dir("prop");
        let tg = train_gate(n);
        let goals = [tg.cross(0), StateFormula::not(tg.safety())];
        for goal in &goals {
            let ram = ModelChecker::new(&tg.net)
                .with_threads(threads)
                .try_reachable_governed(goal, &Budget::unlimited())
                .expect("resident run");
            let spill = ModelChecker::new(&tg.net)
                .with_threads(threads)
                .with_config(ExploreConfig::default().with_spill(&dir, budget))
                .try_reachable_governed(goal, &Budget::unlimited())
                .expect("spill run");
            prop_assert_eq!(
                spill.value().reachable,
                ram.value().reachable,
                "train_gate({}) threads={} budget={}", n, threads, budget
            );
        }

        let prog = wcet_program(3);
        let ram = ModelChecker::new(&prog.net)
            .with_threads(threads)
            .try_reachable_governed(&prog.terminated(), &Budget::unlimited())
            .expect("resident run");
        let spill = ModelChecker::new(&prog.net)
            .with_threads(threads)
            .with_config(ExploreConfig::default().with_spill(&dir, budget))
            .try_reachable_governed(&prog.terminated(), &Budget::unlimited())
            .expect("spill run");
        prop_assert_eq!(spill.value().reachable, ram.value().reachable);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
