//! Differential tests for the `tempo-flow` dataflow passes: per-location
//! LU clock bounds, interval range narrowing and query-directed slicing
//! must be verdict-invisible in every engine that applies them.
//!
//! The sweep mirrors `integration_reduction.rs`: for every seeded random
//! network — including models with broadcast channels, urgent channels,
//! and committed/urgent locations — and every worker count 1–4, the
//! flow-enabled engines must return byte-identical verdicts to the
//! unreduced oracle, every reachability witness must realize into a
//! concrete run the independent replay validator accepts, and the run
//! reports must show each analysis actually firing somewhere (so the
//! suite cannot rot into comparing two identical configurations).

use tempo_core::cora::PricedNetwork;
use tempo_core::expr::{Expr, Stmt};
use tempo_core::modest::{Mcpta, McptaConfig};
use tempo_core::obs::{Budget, ExploreConfig, RunReport};
use tempo_core::smc::StatisticalChecker;
use tempo_core::ta::{ChannelKind, ClockAtom, ModelChecker, Network, NetworkBuilder, StateFormula};
use tempo_core::tiga::GameSolver;
use tempo_core::witness::{realize, replay};
use tempo_models::{brp, train_gate, train_gate_game, wcet_program};

/// Deterministic splitmix/LCG-style generator: the differential sweep
/// must reproduce bit-identically from the seed alone.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0x1234_5678))
    }

    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 33
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn flag(&mut self) -> bool {
        self.below(2) == 1
    }
}

/// Builds a random network exercising every flow code path:
///
/// - 2–3 replicated automata with staged clock guards and resets, so the
///   per-location LU fixpoint is strictly tighter than the global
///   maximal constant somewhere;
/// - a monitor counting pings over a (sometimes broadcast, sometimes
///   urgent) channel array, with a sometimes committed/urgent hop
///   location — the paths where the sibling reductions fall back;
/// - on half the seeds, slicing fuel: a write-only `ghost` variable and
///   an edge whose data guard is provably false under the range
///   fixpoint, holding an otherwise-dead private clock live;
/// - a goal that sometimes reads the counter, sometimes a location,
///   sometimes both.
fn random_model(seed: u64) -> (Network, StateFormula) {
    let mut rng = Rng::new(seed);
    let mut b = NetworkBuilder::new();
    let replicas = 2 + rng.below(2) as usize;
    let kind = if rng.flag() {
        ChannelKind::Broadcast
    } else {
        ChannelKind::Binary
    };
    let urgent_chan = rng.flag();
    let ping = b.channel_array("ping", replicas, kind, urgent_chan);

    // Replicas: Idle --(x >= g, ping[i]!, reset x)--> Busy --(x >= 1)--> Idle.
    // The upper invariant (when present) is observable only in Busy, so
    // Idle's upper LU bound is tighter than the global constant.
    let guard_c = 1 + rng.below(3) as i64;
    let use_inv = rng.flag();
    let inv_c = guard_c + 1 + rng.below(2) as i64;
    let mut rep0 = None;
    let mut busy0 = None;
    for i in 0..replicas {
        let x = b.clock(&format!("x{i}"));
        let mut a = b.automaton(&format!("Rep{i}"));
        let idle = a.location("Idle");
        let busy = if use_inv {
            a.location_with_invariant("Busy", vec![ClockAtom::le(x, inv_c)])
        } else {
            a.location("Busy")
        };
        // Urgent channels forbid clock guards on synchronizing edges.
        let mut e = a
            .edge(idle, busy)
            .send_indexed(ping, Expr::konst(i as i64))
            .reset(x, 0);
        if !urgent_chan {
            e = e.guard_clock(ClockAtom::ge(x, guard_c));
        }
        e.done();
        a.edge(busy, idle).guard_clock(ClockAtom::ge(x, 1)).done();
        let id = a.done();
        if i == 0 {
            rep0 = Some(id);
            busy0 = Some(busy);
        }
    }

    // Monitor: counts pings; a committed or urgent hop on some seeds.
    // The declared range [0, 9] is deliberately wider than the guarded
    // reachable range [0, 4], so the range fixpoint narrows it.
    let count = b.decls_mut().int_init("count", 0, 9, 0);
    let bump = Stmt::assign(count, Expr::var(count) + Expr::konst(1));
    let can_bump = Expr::var(count).lt(Expr::konst(4));
    let mut m = b.automaton("Monitor");
    let m0 = m.location("M0");
    match rng.below(3) {
        0 => {
            m.edge(m0, m0)
                .select(0, replicas as i64 - 1)
                .recv_indexed(ping, Expr::select(0))
                .guard_data(can_bump)
                .update(bump)
                .done();
        }
        style => {
            let hop = if style == 1 {
                m.committed_location("Hop")
            } else {
                m.urgent_location("Hop")
            };
            m.edge(m0, hop)
                .select(0, replicas as i64 - 1)
                .recv_indexed(ping, Expr::select(0))
                .guard_data(can_bump)
                .done();
            m.edge(hop, m0).update(bump).done();
        }
    }
    let monitor = m.done();

    // Slicing fuel: `ghost` is written but read by nothing observable,
    // and the second edge's guard `count >= 99` is provably false for
    // `count` in [0, 4] — slicing disables it, freeing the private
    // clock `z` for active-clock reduction.
    if rng.flag() {
        let ghost = b.decls_mut().int_init("ghost", 0, 8, 0);
        let z = b.clock("z");
        let mut a = b.automaton("Ghost");
        let l = a.location("G");
        a.edge(l, l)
            .guard_data(Expr::var(count).lt(Expr::konst(4)))
            .update(Stmt::assign(ghost, Expr::var(ghost) + Expr::konst(1)))
            .done();
        a.edge(l, l)
            .guard_clock(ClockAtom::ge(z, 1))
            .guard_data(Expr::var(count).ge(Expr::konst(99)))
            .reset(z, 0)
            .done();
        a.done();
    }

    let goal = match rng.below(3) {
        0 => StateFormula::data(Expr::var(count).ge(Expr::konst(3))),
        1 => StateFormula::and(vec![
            StateFormula::at(monitor, m0),
            StateFormula::data(Expr::var(count).ge(Expr::konst(4))),
        ]),
        _ => StateFormula::and(vec![
            StateFormula::at(rep0.expect("replicas >= 2"), busy0.expect("built")),
            StateFormula::data(Expr::var(count).ge(Expr::konst(2))),
        ]),
    };
    (b.build(), goal)
}

fn flow_fired(r: &RunReport) -> (u64, u64, u64, u64, u64) {
    (
        r.lu_tightened,
        r.vars_narrowed,
        r.sliced_clocks,
        r.sliced_vars,
        r.sliced_edges,
    )
}

#[test]
fn flow_verdicts_match_unreduced_across_seeds_and_workers() {
    let mut totals = (0u64, 0u64, 0u64, 0u64, 0u64);
    for seed in 0..48u64 {
        let (net, goal) = random_model(seed);
        let oracle_out = ModelChecker::new(&net)
            .with_config(ExploreConfig::unreduced())
            .try_reachable_governed(&goal, &Budget::unlimited())
            .expect("in-memory store");
        assert_eq!(
            flow_fired(oracle_out.report()),
            (0, 0, 0, 0, 0),
            "seed={seed}: the unreduced oracle must not run the flow passes"
        );
        let oracle = oracle_out.into_value();
        let (oracle_dl, _) = ModelChecker::new(&net)
            .with_config(ExploreConfig::unreduced())
            .deadlock_free();
        // The flow-only configuration isolates LU + slicing from the
        // sibling reductions; the default stacks everything.
        let configs = [
            ExploreConfig::unreduced().with_lu(true).with_slice(true),
            ExploreConfig::default(),
        ];
        for workers in 1..=4 {
            for config in &configs {
                let out = ModelChecker::new(&net)
                    .with_config(config.clone())
                    .with_threads(workers)
                    .try_reachable_governed(&goal, &Budget::unlimited())
                    .expect("in-memory store");
                let (lu, nar, sc, sv, se) = flow_fired(out.report());
                totals.0 += lu;
                totals.1 += nar;
                totals.2 += sc;
                totals.3 += sv;
                totals.4 += se;
                let res = out.into_value();
                assert_eq!(
                    res.reachable, oracle.reachable,
                    "seed={seed} workers={workers}: reachability verdict moved"
                );
                if res.reachable {
                    let trace = res.trace.as_ref().expect("reachable verdicts carry traces");
                    let concrete = realize(&net, trace, &goal)
                        .expect("witness from a flow-reduced run realizes");
                    replay(&net, &concrete, Some(&goal)).expect("independent replay accepts");
                }
            }
            let (dl, _) = ModelChecker::new(&net)
                .with_threads(workers)
                .deadlock_free();
            assert_eq!(
                dl.holds(),
                oracle_dl.holds(),
                "seed={seed} workers={workers}: deadlock verdict moved"
            );
        }
    }
    assert!(totals.0 > 0, "LU tightening never fired across the sweep");
    assert!(totals.1 > 0, "range narrowing never fired across the sweep");
    assert!(totals.2 > 0, "clock slicing never fired across the sweep");
    assert!(
        totals.3 > 0,
        "dead-variable slicing never fired across the sweep"
    );
    assert!(totals.4 > 0, "edge slicing never fired across the sweep");
}

#[test]
fn train_gate_flow_is_verdict_identical_and_never_explores_more() {
    let tg = train_gate(3);
    for goal in [tg.safety(), tg.cross(0), tg.cross(2), tg.appr(1)] {
        let plain = ModelChecker::new(&tg.net)
            .with_config(ExploreConfig::unreduced())
            .try_reachable_governed(&goal, &Budget::unlimited())
            .expect("in-memory store");
        let flow = ModelChecker::new(&tg.net)
            .with_config(ExploreConfig::unreduced().with_lu(true).with_slice(true))
            .try_reachable_governed(&goal, &Budget::unlimited())
            .expect("in-memory store");
        assert_eq!(
            flow.value().reachable,
            plain.value().reachable,
            "train-gate verdict moved under flow"
        );
        assert!(
            flow.report().states_explored <= plain.report().states_explored,
            "flow explored more states: {} > {}",
            flow.report().states_explored,
            plain.report().states_explored
        );
        assert!(
            flow.report().lu_tightened > 0,
            "LU must tighten on train-gate"
        );
    }
}

#[test]
fn cora_costs_survive_lu_and_slicing() {
    // The WCET pipeline model runs through both cora sweeps (min-time
    // Dijkstra, max-time value iteration) with cost certificates.
    for n in [1, 3] {
        let p = wcet_program(n);
        let goal = p.terminated();
        let with = PricedNetwork::new(p.net.clone());
        let without = PricedNetwork::new(p.net.clone()).without_flow();
        assert_eq!(
            with.min_time_reach(&goal),
            without.min_time_reach(&goal),
            "n={n}: BCET moved under flow"
        );
        assert_eq!(
            with.max_time_reach(&goal),
            without.max_time_reach(&goal),
            "n={n}: WCET moved under flow"
        );
        let out = with.min_cost_reach_governed(&goal, &Budget::unlimited());
        assert!(
            out.report().lu_tightened > 0,
            "n={n}: LU must tighten on the WCET pipeline"
        );
        assert!(out.value().is_some(), "n={n}: program terminates");
    }
}

#[test]
fn tiga_strategies_survive_slicing() {
    let g = train_gate_game(2);
    let with = GameSolver::new(&g.net).solve_safety(&g.collision());
    let without = GameSolver::new(&g.net)
        .without_flow()
        .solve_safety(&g.collision());
    assert_eq!(with.winning, without.winning, "safety verdict moved");
    let with = GameSolver::new(&g.net).solve_reachability(&g.collision());
    let without = GameSolver::new(&g.net)
        .without_flow()
        .solve_reachability(&g.collision());
    assert_eq!(with.winning, without.winning, "reach verdict moved");
}

#[test]
fn smc_estimates_are_bit_identical_under_slicing() {
    let tg = train_gate(2);
    let goal = tg.cross(0);
    for threads in [2, 4] {
        let mut with = StatisticalChecker::new(&tg.net, tg.rates(), 99).with_threads(threads);
        let mut without = StatisticalChecker::new(&tg.net, tg.rates(), 99)
            .with_threads(threads)
            .without_flow();
        let a = with.probability(&goal, 50.0, 400, 0.95);
        let b = without.probability(&goal, 50.0, 400, 0.95);
        assert_eq!(
            (a.mean, a.lower, a.upper, a.successes),
            (b.mean, b.lower, b.upper, b.successes),
            "threads={threads}: the estimate must be bit-identical"
        );
    }
}

#[test]
fn mcpta_probabilities_survive_flow_and_the_mdp_never_grows() {
    let b = brp(2, 2, 1);
    let with = Mcpta::try_build_with(&b.pta, &[], McptaConfig::default(), &Budget::unlimited());
    let without = Mcpta::try_build_with(
        &b.pta,
        &[],
        McptaConfig {
            flow: false,
            ..McptaConfig::default()
        },
        &Budget::unlimited(),
    );
    assert!(
        with.report().states_explored <= without.report().states_explored,
        "flow built a larger digital MDP: {} > {}",
        with.report().states_explored,
        without.report().states_explored
    );
    assert!(
        with.report().lu_tightened > 0,
        "LU must tighten on BRP's staged timers"
    );
    let with = with.into_value().expect("unlimited budget");
    let without = without.into_value().expect("unlimited budget");
    for goal in [b.pa_goal(), b.pb_goal(), b.success()] {
        let p_with = with.pmax(&goal);
        let p_without = without.pmax(&goal);
        assert!(
            (p_with - p_without).abs() < 1e-12,
            "pmax diverged under flow: {p_with} vs {p_without}"
        );
    }
}
