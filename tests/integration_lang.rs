//! Frontend integration tests: the pretty-printer round-trip contract
//! (`parse(render(m)) == m`) over randomly generated well-formed
//! models, and golden canonical renderings of one corpus problem per
//! tier.
//!
//! The generator builds ASTs directly (spans default to zero; AST
//! equality ignores them), respecting everything the parser validates:
//! events and sync sets name declared channels (TL003), calls and
//! components name defined processes with matching arity (TL005),
//! instance names are unique (TL004), and asserts only reference
//! component instances of the `system` line (TL007).
//!
//! Set `TEMPO_BLESS=1` to regenerate the golden files after an
//! intentional canonical-form change.

use proptest::{proptest, ProptestConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use tempo_core::lang::ast::{
    AssertDef, AssertKind, ChannelDecl, ChannelKind, ClockConstraint, ClockDecl, ClockRef, CmpOp,
    Component, EventSpec, Formula, GuardAtom, Ident, IntExpr, IntOp, Model, ParamDecl, Proc,
    ProcessDef, SmcOpts, SystemDef, Update, VarDecl,
};
use tempo_core::lang::{parse, render};

// ---------------------------------------------------------------- generator

/// Declared-name pools threaded through the generator so every
/// reference the parser validates resolves.
struct Pools {
    params: Vec<String>,
    channels: Vec<String>,
    clocks: Vec<String>,
    /// `(name, upper bound)` — assignments stay inside the range.
    vars: Vec<(String, i64)>,
    procs: Vec<String>,
}

fn pick<'a, T>(rng: &mut StdRng, items: &'a [T]) -> &'a T {
    &items[rng.gen_range(0..items.len())]
}

fn ident(name: impl AsRef<str>) -> Ident {
    Ident::new(name.as_ref())
}

fn gen_cmp(rng: &mut StdRng) -> CmpOp {
    *pick(rng, &[CmpOp::Le, CmpOp::Lt, CmpOp::Ge, CmpOp::Gt])
}

/// A compile-time integer expression over params and literals.
fn gen_bound(rng: &mut StdRng, pools: &Pools) -> IntExpr {
    match rng.gen_range(0..6u32) {
        0 | 1 | 2 => IntExpr::Lit(rng.gen_range(0..=9i64)),
        3 if !pools.params.is_empty() => IntExpr::Name(ident(pick(rng, &pools.params))),
        4 if !pools.params.is_empty() => IntExpr::Bin(
            *pick(rng, &[IntOp::Add, IntOp::Sub, IntOp::Mul]),
            Box::new(IntExpr::Name(ident(pick(rng, &pools.params)))),
            Box::new(IntExpr::Lit(rng.gen_range(1..=4i64))),
        ),
        _ => IntExpr::Lit(rng.gen_range(0..=9i64)),
    }
}

fn gen_clock_constraint(rng: &mut StdRng, pools: &Pools, invariant: bool) -> ClockConstraint {
    let op = if invariant {
        *pick(rng, &[CmpOp::Le, CmpOp::Lt])
    } else {
        gen_cmp(rng)
    };
    ClockConstraint {
        clock: ClockRef {
            name: ident(pick(rng, &pools.clocks)),
            index: None,
        },
        minus: None,
        op,
        bound: gen_bound(rng, pools),
    }
}

fn gen_guards(rng: &mut StdRng, pools: &Pools) -> Vec<GuardAtom> {
    let mut guards = Vec::new();
    for _ in 0..rng.gen_range(0..=2u32) {
        if !pools.clocks.is_empty() && rng.gen_bool(0.5) {
            guards.push(GuardAtom::Clock(gen_clock_constraint(rng, pools, false)));
        } else if !pools.vars.is_empty() {
            let (v, hi) = pick(rng, &pools.vars).clone();
            guards.push(GuardAtom::Data(
                IntExpr::Name(ident(&v)),
                gen_cmp(rng),
                IntExpr::Lit(rng.gen_range(0..=hi)),
            ));
        }
    }
    guards
}

fn gen_updates(rng: &mut StdRng, pools: &Pools) -> Vec<Update> {
    let mut updates = Vec::new();
    for _ in 0..rng.gen_range(0..=2u32) {
        if !pools.clocks.is_empty() && rng.gen_bool(0.5) {
            updates.push(Update::ClockReset(
                ClockRef {
                    name: ident(pick(rng, &pools.clocks)),
                    index: None,
                },
                IntExpr::Lit(0),
            ));
        } else if !pools.vars.is_empty() {
            let (v, hi) = pick(rng, &pools.vars).clone();
            updates.push(Update::Assign(
                ident(&v),
                None,
                IntExpr::Lit(rng.gen_range(0..=hi)),
            ));
        }
    }
    updates
}

fn gen_event(rng: &mut StdRng, pools: &Pools) -> EventSpec {
    match rng.gen_range(0..5u32) {
        0 => EventSpec::Tau,
        n if n % 2 == 1 => EventSpec::Send(ident(pick(rng, &pools.channels))),
        _ => EventSpec::Recv(ident(pick(rng, &pools.channels))),
    }
}

fn gen_leaf(rng: &mut StdRng, pools: &Pools) -> Proc {
    match rng.gen_range(0..4u32) {
        0 => Proc::Stop,
        1 => Proc::Skip,
        _ => Proc::Call(ident(pick(rng, &pools.procs)), Vec::new()),
    }
}

fn gen_proc(rng: &mut StdRng, pools: &Pools, depth: u32) -> Proc {
    if depth == 0 {
        return gen_leaf(rng, pools);
    }
    match rng.gen_range(0..8u32) {
        0 => gen_leaf(rng, pools),
        1 | 2 if !pools.clocks.is_empty() => {
            let n = rng.gen_range(1..=2usize);
            let atoms = (0..n)
                .map(|_| gen_clock_constraint(rng, pools, true))
                .collect();
            Proc::Invariant(atoms, Box::new(gen_proc(rng, pools, depth - 1)))
        }
        3 => {
            let n = rng.gen_range(2..=3usize);
            Proc::ExtChoice((0..n).map(|_| gen_proc(rng, pools, depth - 1)).collect())
        }
        4 => {
            let n = rng.gen_range(2..=3usize);
            Proc::IntChoice((0..n).map(|_| gen_proc(rng, pools, depth - 1)).collect())
        }
        _ => Proc::Prefix {
            guards: gen_guards(rng, pools),
            event: gen_event(rng, pools),
            updates: gen_updates(rng, pools),
            then: Box::new(gen_proc(rng, pools, depth - 1)),
        },
    }
}

fn gen_formula(rng: &mut StdRng, pools: &Pools, instances: &[String], depth: u32) -> Formula {
    if depth == 0 || rng.gen_bool(0.4) {
        // Atom.
        return match rng.gen_range(0..5u32) {
            0 => Formula::True,
            1 => Formula::False,
            2 if !pools.clocks.is_empty() => {
                Formula::Clock(gen_clock_constraint(rng, pools, false))
            }
            3 if !pools.vars.is_empty() => {
                let (v, hi) = pick(rng, &pools.vars).clone();
                Formula::Data(
                    IntExpr::Name(ident(&v)),
                    gen_cmp(rng),
                    IntExpr::Lit(rng.gen_range(0..=hi)),
                )
            }
            _ if !instances.is_empty() => Formula::AtLoc(
                ident(pick(rng, instances)),
                ident(pick(rng, &pools.procs)),
            ),
            _ => Formula::True,
        };
    }
    match rng.gen_range(0..3u32) {
        0 => Formula::Not(Box::new(gen_formula(rng, pools, instances, depth - 1))),
        1 => {
            let n = rng.gen_range(2..=3usize);
            Formula::And(
                (0..n)
                    .map(|_| gen_formula(rng, pools, instances, depth - 1))
                    .collect(),
            )
        }
        _ => {
            let n = rng.gen_range(2..=3usize);
            Formula::Or(
                (0..n)
                    .map(|_| gen_formula(rng, pools, instances, depth - 1))
                    .collect(),
            )
        }
    }
}

const PROBS: [f64; 8] = [0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99];
const CONFIDENCES: [f64; 3] = [0.9, 0.95, 0.99];

fn gen_assert(rng: &mut StdRng, pools: &Pools, instances: &[String]) -> AssertKind {
    match rng.gen_range(0..8u32) {
        0 => AssertKind::DeadlockFree,
        1 => AssertKind::Reach(gen_formula(rng, pools, instances, 2)),
        2 => AssertKind::Always(gen_formula(rng, pools, instances, 2)),
        3 => AssertKind::LeadsTo(
            gen_formula(rng, pools, instances, 1),
            gen_formula(rng, pools, instances, 1),
        ),
        4 => AssertKind::Pmax(
            gen_formula(rng, pools, instances, 1),
            gen_cmp(rng),
            *pick(rng, &PROBS),
        ),
        5 => AssertKind::Pmin(
            gen_formula(rng, pools, instances, 1),
            gen_cmp(rng),
            *pick(rng, &PROBS),
        ),
        6 => AssertKind::Pr {
            bound: gen_bound(rng, pools),
            goal: gen_formula(rng, pools, instances, 1),
            cmp: gen_cmp(rng),
            prob: *pick(rng, &PROBS),
            opts: SmcOpts {
                runs: rng.gen_bool(0.5).then(|| rng.gen_range(10..=500u64)),
                confidence: rng.gen_bool(0.5).then(|| *pick(rng, &CONFIDENCES)),
            },
        },
        _ => {
            if rng.gen_bool(0.5) {
                AssertKind::Refines(
                    ident(pick(rng, instances)),
                    ident(pick(rng, instances)),
                )
            } else {
                AssertKind::Ioco(ident(pick(rng, instances)), ident(pick(rng, instances)))
            }
        }
    }
}

/// A random well-formed model: declarations, zero-arity process
/// definitions, a `system` line over distinct instances, and asserts
/// restricted to names the parser accepts.
fn gen_model(rng: &mut StdRng) -> Model {
    let mut pools = Pools {
        params: Vec::new(),
        channels: Vec::new(),
        clocks: Vec::new(),
        vars: Vec::new(),
        procs: vec!["P".to_owned(), "Q".to_owned()],
    };
    let mut model = Model::default();

    for name in ["N", "M"] {
        if rng.gen_bool(0.5) {
            pools.params.push(name.to_owned());
            model.params.push(ParamDecl {
                name: ident(name),
                value: rng.gen_range(1..=5i64),
            });
        }
    }
    for name in ["a", "b", "c"] {
        if name == "a" || rng.gen_bool(0.6) {
            pools.channels.push(name.to_owned());
            model.channels.push(ChannelDecl {
                kind: *pick(
                    rng,
                    &[
                        ChannelKind::Handshake,
                        ChannelKind::Handshake,
                        ChannelKind::Urgent,
                        ChannelKind::Broadcast,
                    ],
                ),
                names: vec![ident(name)],
            });
        }
    }
    for name in ["x", "y"] {
        if rng.gen_bool(0.6) {
            pools.clocks.push(name.to_owned());
            model.clocks.push(ClockDecl {
                name: ident(name),
                size: None,
            });
        }
    }
    for name in ["v", "w"] {
        if rng.gen_bool(0.5) {
            let hi = rng.gen_range(1..=5i64);
            pools.vars.push((name.to_owned(), hi));
            model.vars.push(VarDecl {
                name: ident(name),
                size: None,
                lo: IntExpr::Lit(0),
                hi: IntExpr::Lit(hi),
                init: rng.gen_bool(0.5).then(|| IntExpr::Lit(0)),
            });
        }
    }
    if rng.gen_bool(0.4) {
        pools.procs.push("R".to_owned());
    }

    for name in pools.procs.clone() {
        let body = gen_proc(rng, &pools, 3);
        model.processes.push(ProcessDef {
            name: ident(&name),
            params: Vec::new(),
            body,
        });
    }

    // A system over distinct process instances; every assert needs one.
    let n_components = rng.gen_range(1..=pools.procs.len());
    let components: Vec<Component> = pools.procs[..n_components]
        .iter()
        .map(|p| Component {
            process: ident(p),
            args: Vec::new(),
            hide: if rng.gen_bool(0.2) {
                vec![ident(pick(rng, &pools.channels))]
            } else {
                Vec::new()
            },
            rename: if rng.gen_bool(0.2) {
                let old = pick(rng, &pools.channels).clone();
                let new = pick(rng, &pools.channels).clone();
                vec![(ident(&old), ident(&new))]
            } else {
                Vec::new()
            },
            alias: None,
        })
        .collect();
    let instances: Vec<String> = components
        .iter()
        .map(|c| c.instance_name().to_owned())
        .collect();
    let syncs: Vec<Vec<Ident>> = (1..n_components)
        .map(|_| {
            pools
                .channels
                .iter()
                .filter(|_| rng.gen_bool(0.5))
                .map(|c| ident(c))
                .collect()
        })
        .collect();
    model.system = Some(SystemDef { components, syncs });

    for _ in 0..rng.gen_range(0..=3u32) {
        model.asserts.push(AssertDef {
            kind: gen_assert(rng, &pools, &instances),
            span: Default::default(),
        });
    }
    model
}

// ---------------------------------------------------------------- round-trip

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `parse(render(m)) == m`, and a second render is a fixpoint.
    #[test]
    fn pretty_printer_round_trips(seed in 0u64..1_000_000u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = gen_model(&mut rng);
        let text = render(&m);
        let reparsed = parse(&text).unwrap_or_else(|e| {
            panic!("generated model must parse, got {} at {}: {}\n{text}", e.code, e.span, e.message)
        });
        assert_eq!(reparsed, m, "parse ∘ render must be the identity\n{text}");
        assert_eq!(render(&reparsed), text, "render must be a fixpoint after one round");
    }
}

// ------------------------------------------------------------------- golden

/// One corpus problem per tier whose canonical rendering is pinned.
const GOLDEN: [&str; 6] = [
    "P001_constructs",
    "P100_handshake",
    "P200_train_gate",
    "P300_refinement",
    "P400_pmax",
    "P401_pr_smc",
];

fn repo_root() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/bench; the repo root is two up.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// The canonical rendering of each pinned corpus problem matches its
/// committed golden file, and the golden file parses back to the same
/// model.
#[test]
fn corpus_goldens_are_canonical() {
    let bless = std::env::var_os("TEMPO_BLESS").is_some();
    for name in GOLDEN {
        let source = std::fs::read_to_string(repo_root().join(format!("corpus/{name}.tempo")))
            .unwrap_or_else(|e| panic!("{name}: corpus file unreadable: {e}"));
        let model = parse(&source).unwrap_or_else(|e| panic!("{name}: corpus model parses: {e}"));
        let canonical = render(&model);
        let golden_path = repo_root().join(format!("tests/golden/{name}.tempo"));
        if bless {
            std::fs::write(&golden_path, &canonical)
                .unwrap_or_else(|e| panic!("{name}: cannot bless golden: {e}"));
        }
        let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
            panic!("{name}: golden file missing ({e}); run with TEMPO_BLESS=1 to create it")
        });
        assert_eq!(
            canonical, golden,
            "{name}: canonical rendering drifted from tests/golden/{name}.tempo \
             (re-bless with TEMPO_BLESS=1 if intentional)"
        );
        let reparsed =
            parse(&golden).unwrap_or_else(|e| panic!("{name}: golden must parse: {e}"));
        assert_eq!(reparsed, model, "{name}: golden parses back to the corpus model");
    }
}
