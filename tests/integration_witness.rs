//! Cross-engine witness and certificate integration tests.
//!
//! Every verdict-producing engine must return a certificate that the
//! independent replay validator accepts on the paper models, and
//! deliberately mutated certificates (wrong delay, wrong cost,
//! incomplete strategy, wrong scheduler value) must be rejected with
//! typed errors. Certificates also round-trip through the text format,
//! and a set of golden certificate files pins the exact serialized
//! output (regenerate with `TEMPO_BLESS=1 cargo test`).

use std::path::PathBuf;

use proptest::prelude::*;
use tempo_core::cora::PricedNetwork;
use tempo_core::mdp::Opt;
use tempo_core::obs::Budget;
use tempo_core::ta::{
    AutomatonId, ClockAtom, LocationId, ModelChecker, NetworkBuilder, StateFormula, Verdict,
};
use tempo_core::tiga::GameSolver;
use tempo_core::witness::certify::{
    certified_leads_to, certified_mcpta_reach, certified_mdp_reachability, certified_min_cost,
    certified_probability, certified_reach_game, certified_reachable, certified_safety_game,
    Certificate,
};
use tempo_core::witness::{format, realize, replay, WitnessError};
use tempo_models::{brp, train_gate, train_gate_game, wcet_program};

/// Compares `text` against the golden file `tests/golden/<name>`, or
/// rewrites the file when `TEMPO_BLESS` is set.
fn check_golden(name: &str, text: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(name);
    if std::env::var_os("TEMPO_BLESS").is_some() {
        std::fs::write(&path, text).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|_| panic!("missing golden file {name}; bless with TEMPO_BLESS=1"));
    assert_eq!(golden, text, "golden certificate {name} drifted");
}

/// Renders, parses back, and checks the round-trip is exact (certificate
/// text is canonical: rendering the parse reproduces the input).
fn round_trip(net: &tempo_core::ta::Network, cert: &Certificate) -> Certificate {
    let text = format::render(cert);
    let parsed = format::parse(net, &text).expect("parse rendered certificate");
    assert_eq!(format::render(&parsed), text, "round-trip must be exact");
    parsed
}

// ---------------------------------------------------------------------
// Reachability (UPPAAL engine)
// ---------------------------------------------------------------------

#[test]
fn reachability_certificate_on_train_gate() {
    let tg = train_gate(2);
    let goal = tg.cross(0);
    let (out, cert) =
        certified_reachable(&tg.net, &goal, &Budget::unlimited()).expect("certification");
    assert!(out.value().reachable, "train 0 can cross");
    let cert = cert.expect("reachable verdicts carry a witness");
    assert!(out.report().certificate_bytes > 0, "report records size");

    // The certificate survives serialization and still validates.
    let parsed = round_trip(&tg.net, &Certificate::Trace(cert.clone()));
    check_golden("train_gate_reach.cert", &format::render(&parsed));
    let Certificate::Trace(parsed) = parsed else {
        panic!("parse preserved the kind");
    };
    parsed
        .validate(&tg.net, &goal)
        .expect("parsed witness validates");

    // The symbolic trace has a Display rendering (satellite: Display).
    let shown = out.value().trace.as_ref().expect("trace").to_string();
    assert!(shown.contains("-->"), "Display shows steps: {shown}");

    // Mutations are rejected with typed errors.
    let mut neg = cert.clone();
    neg.trace.steps[0].delay = -1;
    assert!(
        matches!(
            neg.validate(&tg.net, &goal),
            Err(WitnessError::WrongDelay { step: 0 })
        ),
        "negative delay must be a WrongDelay"
    );

    let mut wrong = cert.clone();
    let last = wrong.trace.steps.len() - 1;
    wrong.trace.steps[last].delay += wrong.trace.denom * 1000;
    let err = wrong
        .validate(&tg.net, &goal)
        .expect_err("huge delay rejected");
    assert!(
        matches!(
            err,
            WitnessError::InvariantViolated { .. }
                | WitnessError::GuardUnsatisfied { .. }
                | WitnessError::DelayForbidden { .. }
                | WitnessError::StateMismatch { .. }
        ),
        "tampered delay rejected with a semantic error, got {err:?}"
    );

    // The witness ends with train 0 crossing, not train 1.
    assert!(
        matches!(
            cert.validate(&tg.net, &tg.cross(1)),
            Err(WitnessError::GoalNotSatisfied)
        ),
        "wrong goal must be GoalNotSatisfied"
    );
}

// ---------------------------------------------------------------------
// Liveness (leads-to counterexamples)
// ---------------------------------------------------------------------

/// Start can branch into a dead end that never reaches Goal, so
/// `Start --> Goal` is violated and the engine must certify the
/// counterexample prefix.
fn branching_net() -> (tempo_core::ta::Network, AutomatonId, LocationId, LocationId) {
    let mut b = NetworkBuilder::new();
    let mut a = b.automaton("P");
    let start = a.location("Start");
    let stuck = a.location("Stuck");
    let goal = a.location("Goal");
    a.edge(start, stuck).done();
    a.edge(start, goal).done();
    let aid = a.done();
    (b.build(), aid, start, goal)
}

#[test]
fn leads_to_counterexample_is_certified() {
    let (net, aid, start, goal) = branching_net();
    let phi = StateFormula::at(aid, start);
    let psi = StateFormula::at(aid, goal);
    let (out, cert) =
        certified_leads_to(&net, &phi, &psi, &Budget::unlimited()).expect("certification");
    assert!(matches!(out.value().0, Verdict::Violated(_)));
    let cert = cert.expect("violations carry a counterexample");
    assert!(out.report().certificate_bytes > 0);
    // The concrete counterexample ends psi-avoiding.
    let avoid = StateFormula::not(psi.clone());
    cert.validate(&net, &avoid)
        .expect("counterexample validates");

    // A satisfied leads-to has no counterexample to certify.
    let tg = train_gate(2);
    let (out, cert) = certified_leads_to(&tg.net, &tg.appr(0), &tg.cross(0), &Budget::unlimited())
        .expect("certification");
    assert!(matches!(out.value().0, Verdict::Satisfied));
    assert!(cert.is_none());
}

// ---------------------------------------------------------------------
// Minimum-cost reachability (CORA engine)
// ---------------------------------------------------------------------

#[test]
fn cost_certificate_on_wcet_program() {
    let w = wcet_program(3);
    let mut pnet = PricedNetwork::new(w.net.clone());
    // Rate 1 on every location of one automaton: cost = elapsed time.
    for li in 0..w.net.automata()[0].locations.len() {
        pnet.set_rate(AutomatonId(0), LocationId(li), 1);
    }
    let goal = w.terminated();
    let (out, cert) =
        certified_min_cost(&pnet, &goal, &Budget::unlimited()).expect("certification");
    let res = out.value().as_ref().expect("program terminates");
    assert_eq!(res.cost, w.analytic_bcet(), "min time is the analytic BCET");
    let cert = cert.expect("optimum carries a cost certificate");
    assert!(out.report().certificate_bytes > 0);

    // Step costs sum exactly to the reported minimum.
    assert_eq!(cert.step_costs.iter().sum::<i64>(), cert.total);
    assert_eq!(cert.total, res.cost);

    let parsed = round_trip(&w.net, &Certificate::Cost(cert.clone()));
    check_golden("wcet_min_cost.cert", &format::render(&parsed));
    let Certificate::Cost(parsed) = parsed else {
        panic!("parse preserved the kind");
    };
    parsed
        .validate(&pnet, &goal)
        .expect("parsed certificate validates");

    // A wrong step cost and a wrong total are both CostMismatch.
    let mut bad_step = cert.clone();
    bad_step.step_costs[0] += 1;
    assert!(matches!(
        bad_step.validate(&pnet, &goal),
        Err(WitnessError::CostMismatch { step: 0, .. })
    ));
    let mut bad_total = cert.clone();
    bad_total.total += 1;
    assert!(matches!(
        bad_total.validate(&pnet, &goal),
        Err(WitnessError::CostMismatch {
            step: usize::MAX,
            ..
        })
    ));
}

// ---------------------------------------------------------------------
// Timed games (TIGA engine)
// ---------------------------------------------------------------------

/// The door game from the TIGA engine: the environment opens a door
/// within 2 time units, the controller must enter while it is open.
fn door_game() -> (tempo_core::ta::Network, AutomatonId, LocationId) {
    let mut b = NetworkBuilder::new();
    let x = b.clock("x");
    let mut a = b.automaton("Door");
    let closed = a.location_with_invariant("Closed", vec![ClockAtom::le(x, 2)]);
    let open = a.location_with_invariant("Open", vec![ClockAtom::le(x, 1)]);
    let inside = a.location("Inside");
    let missed = a.location("Missed");
    a.edge(closed, open).reset(x, 0).uncontrollable().done();
    a.edge(open, inside).guard_clock(ClockAtom::le(x, 1)).done();
    a.edge(open, missed)
        .guard_clock(ClockAtom::ge(x, 1))
        .uncontrollable()
        .done();
    let aid = a.done();
    (b.build(), aid, inside)
}

#[test]
fn reach_game_strategy_is_certified_exhaustively() {
    let (net, aid, inside) = door_game();
    let goal = StateFormula::at(aid, inside);
    let (out, cert) =
        certified_reach_game(&net, &goal, &Budget::unlimited()).expect("certification");
    assert!(out.value().winning);
    let cert = cert.expect("winning games carry a strategy certificate");
    assert!(out.report().certificate_bytes > 0);

    // The synthesized strategy has a Display rendering (satellite).
    let shown = out.value().strategy.to_string();
    assert!(shown.contains("strategy over"), "Display header: {shown}");

    let parsed = round_trip(&net, &Certificate::Strategy(cert.clone()));
    check_golden("door_game_strategy.cert", &format::render(&parsed));
    let Certificate::Strategy(parsed) = parsed else {
        panic!("parse preserved the kind");
    };
    parsed
        .validate(&net, &goal)
        .expect("parsed strategy validates");

    // Removing any prescription leaves the closed loop uncovered.
    let mut incomplete = cert.clone();
    incomplete.prescriptions.remove(0);
    assert!(matches!(
        incomplete.validate(&net, &goal),
        Err(WitnessError::StrategyIncomplete { .. })
    ));
}

#[test]
fn safety_game_strategy_on_train_gate_game() {
    let g = train_gate_game(2);
    let bad = g.collision();
    let (out, cert) =
        certified_safety_game(&g.net, &bad, &Budget::unlimited()).expect("certification");
    assert!(out.value().winning, "the gate can prevent collisions");
    let cert = cert.expect("winning safety games carry a certificate");
    assert!(out.report().certificate_bytes > 0);

    let parsed = round_trip(&g.net, &Certificate::Strategy(cert.clone()));
    let Certificate::Strategy(parsed) = parsed else {
        panic!("parse preserved the kind");
    };
    parsed
        .validate(&g.net, &bad)
        .expect("parsed strategy validates");

    let mut incomplete = cert.clone();
    incomplete.prescriptions.remove(0);
    assert!(matches!(
        incomplete.validate(&g.net, &bad),
        Err(WitnessError::StrategyIncomplete { .. })
    ));
}

// ---------------------------------------------------------------------
// Statistical model checking (SMC engine)
// ---------------------------------------------------------------------

#[test]
fn smc_runs_are_exported_and_replayed() {
    let tg = train_gate(2);
    let goal = tg.cross(0);
    let (out, cert) = certified_probability(
        &tg.net,
        &tg.rates(),
        42,
        &goal,
        50.0,
        200,
        0.95,
        3,
        &Budget::unlimited(),
    )
    .expect("certification");
    let est = out.value().as_ref().expect("estimate");
    assert!((0.0..=1.0).contains(&est.mean));
    assert_eq!(cert.runs.len(), 3);
    assert!(out.report().certificate_bytes > 0);

    // Each exported run has a Display rendering (satellite).
    let shown = cert.runs[0].to_string();
    assert!(shown.starts_with("t=0"), "Display starts at t=0: {shown}");

    let parsed = round_trip(&tg.net, &Certificate::Runs(cert.clone()));
    check_golden("train_gate_runs.cert", &format::render(&parsed));
    let Certificate::Runs(parsed) = parsed else {
        panic!("parse preserved the kind");
    };
    parsed.validate(&tg.net).expect("parsed runs validate");

    // A tampered delay desynchronizes the recorded successor states.
    let mut bad = cert.clone();
    assert!(!bad.runs[0].steps.is_empty(), "seeded run moves");
    bad.runs[0].steps[0].delay += 1000.0;
    let err = bad.validate(&tg.net).expect_err("tampered run rejected");
    assert!(
        matches!(
            err,
            WitnessError::InvariantViolated { .. }
                | WitnessError::DelayForbidden { .. }
                | WitnessError::GuardUnsatisfied { .. }
                | WitnessError::StateMismatch { .. }
        ),
        "typed rejection, got {err:?}"
    );
}

// ---------------------------------------------------------------------
// MDP / mcpta (MODEST engine)
// ---------------------------------------------------------------------

#[test]
fn mcpta_scheduler_certificate_on_brp() {
    let model = brp(2, 1, 1);
    let mc = model.mcpta(0, 2_000_000);
    let goal = model.p1_goal();
    let (out, cert) = certified_mcpta_reach(&mc, Opt::Max, &goal, 1e-6, &Budget::unlimited())
        .expect("certification");
    let reported = out.value().initial_value;
    assert!(
        (reported - mc.pmax(&goal)).abs() < 1e-9,
        "certified entry point reports the engine's value"
    );
    assert!(out.report().certificate_bytes > 0);

    // The underlying MDP path is certified too (argmax policy surfaced).
    let mask = mc.goal_mask(&goal);
    let (out2, _cert2) =
        certified_mdp_reachability(mc.mdp(), Opt::Max, &mask, 1e-6, &Budget::unlimited())
            .expect("certification");
    assert!((out2.value().initial_value - reported).abs() < 1e-9);
    assert_eq!(
        out2.value().policy().len(),
        mc.mdp().num_states(),
        "argmax policy covers every state"
    );

    // Scheduler certificates are network-independent text: the parser
    // only needs a network for run certificates, so any one works here.
    let placeholder = branching_net().0;
    let parsed = round_trip(&placeholder, &Certificate::Scheduler(cert.clone()));
    check_golden("brp_scheduler.cert", &format::render(&parsed));
    let Certificate::Scheduler(parsed) = parsed else {
        panic!("parse preserved the kind");
    };
    parsed
        .validate(mc.mdp())
        .expect("parsed scheduler validates");

    // A wrong claimed value is a ValueMismatch.
    let mut bad = cert.clone();
    bad.value = (bad.value + 0.5).min(1.5);
    assert!(matches!(
        bad.validate(mc.mdp()),
        Err(WitnessError::ValueMismatch { .. })
    ));

    // An out-of-range choice is an unsound prescription.
    let mut unsound = cert.clone();
    if let Some(slot) = unsound.choices.iter_mut().find(|c| c.is_some()) {
        *slot = Some(usize::MAX);
    }
    assert!(matches!(
        unsound.validate(mc.mdp()),
        Err(WitnessError::PrescriptionUnsound { .. })
    ));
}

// ---------------------------------------------------------------------
// Parallel exploration witnesses (satellite: property test)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every trace produced by the parallel zone-graph engine — at any
    /// thread count — realizes into a concrete run that the independent
    /// replay validator accepts.
    #[test]
    fn parallel_traces_always_replay(threads in 1usize..=4, train in 0usize..2) {
        let tg = train_gate(2);
        let goal = tg.cross(train);
        let mut mc = ModelChecker::new(&tg.net).with_threads(threads);
        let res = mc.reachable(&goal);
        prop_assert!(res.reachable);
        let trace = res.trace.expect("reachable verdicts carry traces");
        let concrete = realize(&tg.net, &trace, &goal).expect("realizable");
        replay(&tg.net, &concrete, Some(&goal)).expect("independent replay accepts");
    }
}

// ---------------------------------------------------------------------
// Golden certificates parse and validate from cold text
// ---------------------------------------------------------------------

#[test]
fn golden_certificates_validate_from_disk() {
    if std::env::var_os("TEMPO_BLESS").is_some() {
        return; // files are being rewritten by the other tests
    }
    let golden_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden");
    let read = |name: &str| {
        std::fs::read_to_string(golden_dir.join(name))
            .unwrap_or_else(|_| panic!("missing golden file {name}; bless with TEMPO_BLESS=1"))
    };

    let tg = train_gate(2);
    let Certificate::Trace(t) =
        format::parse(&tg.net, &read("train_gate_reach.cert")).expect("parse")
    else {
        panic!("wrong kind");
    };
    t.validate(&tg.net, &tg.cross(0))
        .expect("golden trace validates");

    let w = wcet_program(3);
    let mut pnet = PricedNetwork::new(w.net.clone());
    for li in 0..w.net.automata()[0].locations.len() {
        pnet.set_rate(AutomatonId(0), LocationId(li), 1);
    }
    let Certificate::Cost(c) = format::parse(&w.net, &read("wcet_min_cost.cert")).expect("parse")
    else {
        panic!("wrong kind");
    };
    c.validate(&pnet, &w.terminated())
        .expect("golden cost certificate validates");

    let (net, aid, inside) = door_game();
    let Certificate::Strategy(s) =
        format::parse(&net, &read("door_game_strategy.cert")).expect("parse")
    else {
        panic!("wrong kind");
    };
    s.validate(&net, &StateFormula::at(aid, inside))
        .expect("golden strategy validates");

    let Certificate::Runs(r) =
        format::parse(&tg.net, &read("train_gate_runs.cert")).expect("parse")
    else {
        panic!("wrong kind");
    };
    r.validate(&tg.net).expect("golden runs validate");

    let model = brp(2, 1, 1);
    let mc = model.mcpta(0, 2_000_000);
    let Certificate::Scheduler(sch) =
        format::parse(&net, &read("brp_scheduler.cert")).expect("parse")
    else {
        panic!("wrong kind");
    };
    sch.validate(mc.mdp()).expect("golden scheduler validates");
}

// ---------------------------------------------------------------------
// Certified game solver agrees with the plain solver
// ---------------------------------------------------------------------

#[test]
fn certified_game_agrees_with_plain_solver() {
    let (net, aid, inside) = door_game();
    let goal = StateFormula::at(aid, inside);
    let plain = GameSolver::new(&net).solve_reachability(&goal);
    let (out, _) = certified_reach_game(&net, &goal, &Budget::unlimited()).expect("certify");
    assert_eq!(plain.winning, out.value().winning);
}
