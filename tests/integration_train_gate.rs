//! Integration test: the full §II.A train-gate experiment chain —
//! verification (E1), game synthesis (E2) and statistical analysis (E3)
//! — run end-to-end across `tempo-models`, `tempo-ta`, `tempo-tiga` and
//! `tempo-smc`.

use tempo_core::smc::StatisticalChecker;
use tempo_core::ta::{leads_to, DigitalExplorer, ModelChecker, StateFormula};
use tempo_core::tiga::GameSolver;
use tempo_models::{train_gate, train_gate_game};

#[test]
fn e1_verification_properties_hold() {
    for n in 2..=3 {
        let tg = train_gate(n);
        let mut mc = ModelChecker::new(&tg.net);
        let (safety, _) = mc.always(&tg.safety());
        assert!(safety.holds(), "N={n}: mutual exclusion");
        let (dl, _) = mc.deadlock_free();
        assert!(dl.holds(), "N={n}: deadlock-freedom");
        for id in 0..n {
            let (live, _) = leads_to(&tg.net, &tg.appr(id), &tg.cross(id));
            assert!(live.holds(), "N={n}: Appr({id}) --> Cross({id})");
        }
    }
}

#[test]
fn e1_all_interleavings_reachable() {
    let tg = train_gate(2);
    let mut mc = ModelChecker::new(&tg.net);
    // Each train can be stopped while the other crosses.
    for (a, b) in [(0, 1), (1, 0)] {
        let f = StateFormula::and(vec![
            StateFormula::at(tg.trains[a], tg.train_locs.stop),
            StateFormula::at(tg.trains[b], tg.train_locs.cross),
        ]);
        assert!(mc.reachable(&f).reachable, "Stop({a}) with Cross({b})");
    }
}

#[test]
fn e2_synthesized_strategy_is_safe() {
    let g = train_gate_game(2);
    let solver = GameSolver::new(&g.net);
    let result = solver.solve_safety(&g.collision());
    assert!(result.winning, "the safety game is winnable");
    // Closed loop exercises the strategy against eager environment moves.
    let run = solver.closed_loop(&result.strategy, 300);
    assert!(run.len() > 10, "the controlled system keeps running");
    let exp = DigitalExplorer::new(&g.net);
    for s in &run {
        assert!(
            !exp.satisfies(s, &g.collision()),
            "strategy must prevent collisions"
        );
        assert!(
            result.strategy.is_winning(s),
            "the run stays in the winning region"
        );
    }
}

#[test]
fn e3_cdf_shape_matches_fig4() {
    // Fig. 4's qualitative shape: every CDF is monotone, near 1 by t=100,
    // and the high-rate train crosses stochastically earlier than the
    // low-rate one.
    let n = 3;
    let tg = train_gate(n);
    let runs = 300;
    let grid: Vec<f64> = (1..=10).map(|k| 10.0 * k as f64).collect();
    let mut at_40 = Vec::new();
    for id in 0..n {
        let mut smc = StatisticalChecker::new(&tg.net, tg.rates(), 500 + id as u64);
        let cdf = smc.cdf(&tg.cross(id), 100.0, runs);
        let series = cdf.series(&grid);
        for w in series.windows(2) {
            assert!(w[0].1 <= w[1].1, "CDF must be monotone");
        }
        let final_p = series.last().unwrap().1;
        assert!(
            final_p > 0.9,
            "train {id} crosses by t=100 in most runs: {final_p}"
        );
        at_40.push(cdf.at(40.0));
    }
    assert!(
        at_40[n - 1] >= at_40[0] - 0.1,
        "the high-rate train is not substantially slower: {at_40:?}"
    );
}

#[test]
fn smc_safety_agrees_with_model_checker() {
    // The symbolic engine proves mutual exclusion; simulation must never
    // observe a violation either.
    let tg = train_gate(3);
    let mut smc = StatisticalChecker::new(&tg.net, tg.rates(), 9);
    let safe_runs = smc.count_globally(&tg.safety(), 150.0, 200);
    assert_eq!(
        safe_runs, 200,
        "no simulated run may violate mutual exclusion"
    );
}
