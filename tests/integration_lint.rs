//! Integration: static model analysis (tempo-lint), `check_first`
//! gating in every engine, and active-clock reduction.
//!
//! Three claims are exercised end to end:
//!
//! 1. the paper's five models (train-gate, BRP, vending, DALA, WCET)
//!    are lint-clean;
//! 2. a targeted mutation exists for every lint code that triggers it
//!    exactly once, and every engine's `check_first` gate refuses the
//!    mutated model with a typed error — never a panic;
//! 3. active-clock reduction preserves verdicts byte-for-byte while
//!    the run reports record a strictly smaller DBM dimension on a
//!    paper model (BRP's global clock `gt`).

use proptest::prelude::*;
use tempo_core::bip::BipSystemBuilder;
use tempo_core::expr::Expr;
use tempo_core::lint::{self, LintConfig, LintReport};
use tempo_core::modest::{Assignment, Mcpta, ModestModel, Process};
use tempo_core::obs::Budget;
use tempo_core::ta::{
    AutomatonId, ClockAtom, LocationId, ModelChecker, Network, NetworkBuilder, StateFormula,
};
use tempo_core::{cora, smc, tiga};
use tempo_models::{brp, dala, train_gate, train_gate_game, vending, wcet_program};

fn codes(report: &LintReport) -> Vec<&str> {
    report.diagnostics.iter().map(|d| d.code.as_str()).collect()
}

// ---------------------------------------------------------------------------
// 1. The paper models are lint-clean.
// ---------------------------------------------------------------------------

#[test]
fn paper_models_are_lint_clean() {
    let tg = train_gate(3);
    let r = lint::check_network(&tg.net);
    assert!(r.is_clean(), "train_gate: {:?}", r.diagnostics);

    let game = train_gate_game(2);
    let r = lint::check_network(&game.net);
    assert!(r.is_clean(), "train_gate_game: {:?}", r.diagnostics);

    let vend = vending::controller_spec(5);
    let r = lint::check_network(&vend);
    assert!(r.is_clean(), "vending: {:?}", r.diagnostics);

    let wcet = wcet_program(4);
    let r = lint::check_network(&wcet.net);
    assert!(r.is_clean(), "wcet: {:?}", r.diagnostics);

    let robot = dala();
    let r = lint::check_bip(&robot.sys);
    assert!(r.is_clean(), "dala: {:?}", r.diagnostics);

    let b = brp(4, 2, 1);
    let r = lint::check_modest(&b.model);
    assert!(r.is_clean(), "brp: {:?}", r.diagnostics);
}

// ---------------------------------------------------------------------------
// 2. One mutated fixture per rule; every engine refuses it via check_first.
// ---------------------------------------------------------------------------

/// TA001: an island location no edge can reach.
fn ta001_net() -> Network {
    let mut b = NetworkBuilder::new();
    let x = b.clock("x");
    let mut a = b.automaton("A");
    let l0 = a.location("L0");
    let island = a.location("Island");
    a.edge(l0, l0)
        .guard_clock(ClockAtom::ge(x, 1))
        .reset(x, 0)
        .done();
    a.edge(island, l0).guard_clock(ClockAtom::ge(x, 1)).done();
    a.done();
    b.build()
}

/// TA002: guard `x >= 5` under invariant `x <= 3` — DBM-empty.
fn ta002_net() -> Network {
    let mut b = NetworkBuilder::new();
    let x = b.clock("x");
    let mut a = b.automaton("A");
    let l0 = a.location_with_invariant("L0", vec![ClockAtom::le(x, 3)]);
    let l1 = a.location("L1");
    a.edge(l0, l1).guard_clock(ClockAtom::ge(x, 5)).done();
    a.edge(l0, l1)
        .guard_clock(ClockAtom::ge(x, 1))
        .reset(x, 0)
        .done();
    a.edge(l1, l0).guard_clock(ClockAtom::ge(x, 1)).done();
    a.done();
    b.build()
}

/// TA003: a binary channel that is sent on but never received.
fn ta003_net() -> Network {
    let mut b = NetworkBuilder::new();
    let x = b.clock("x");
    let c = b.channel("oneway");
    let mut a = b.automaton("A");
    let l0 = a.location("L0");
    a.edge(l0, l0)
        .guard_clock(ClockAtom::ge(x, 1))
        .reset(x, 0)
        .send(c)
        .done();
    a.done();
    b.build()
}

/// TA004: clock `dead` is reset but read by no guard or invariant.
fn ta004_net() -> Network {
    let mut b = NetworkBuilder::new();
    let x = b.clock("x");
    let dead = b.clock("dead");
    let mut a = b.automaton("A");
    let l0 = a.location("L0");
    a.edge(l0, l0)
        .guard_clock(ClockAtom::ge(x, 1))
        .reset(x, 0)
        .reset(dead, 0)
        .done();
    a.done();
    b.build()
}

/// TA005: clock `drift` is read but never reset.
fn ta005_net() -> Network {
    let mut b = NetworkBuilder::new();
    let x = b.clock("x");
    let drift = b.clock("drift");
    let mut a = b.automaton("A");
    let l0 = a.location("L0");
    a.edge(l0, l0)
        .guard_clock(ClockAtom::ge(x, 1))
        .guard_clock(ClockAtom::ge(drift, 1))
        .reset(x, 0)
        .done();
    a.done();
    b.build()
}

/// TA006: an internal cycle whose clock is reset but never bounded
/// from below — time need not advance around it.
fn ta006_net() -> Network {
    let mut b = NetworkBuilder::new();
    let x = b.clock("x");
    let mut a = b.automaton("Busy");
    let l0 = a.location("L0");
    let l1 = a.location("L1");
    a.edge(l0, l1).guard_clock(ClockAtom::le(x, 5)).done();
    a.edge(l1, l0).reset(x, 0).done();
    a.done();
    b.build()
}

/// TA008: variable `ghost` is written on every loop but read by no
/// guard, synchronization index or clock reset.
fn ta008_net() -> Network {
    use tempo_core::expr::Stmt;
    let mut b = NetworkBuilder::new();
    let x = b.clock("x");
    let ghost = b.decls_mut().int("ghost", 0, 9);
    let mut a = b.automaton("A");
    let l0 = a.location("L0");
    a.edge(l0, l0)
        .guard_clock(ClockAtom::ge(x, 1))
        .reset(x, 0)
        .update(Stmt::assign(ghost, Expr::var(ghost) + Expr::konst(1)))
        .done();
    a.done();
    b.build()
}

#[test]
fn each_ta_rule_fires_exactly_once_and_every_engine_refuses() {
    type Fixture = (&'static str, fn() -> Network);
    let cases: Vec<Fixture> = vec![
        ("TA001", ta001_net),
        ("TA002", ta002_net),
        ("TA003", ta003_net),
        ("TA004", ta004_net),
        ("TA005", ta005_net),
        ("TA006", ta006_net),
        ("TA008", ta008_net),
    ];
    let strict = LintConfig::strict();
    for (code, build) in cases {
        let net = build();
        let report = lint::check_network(&net);
        assert_eq!(codes(&report), vec![code], "{:?}", report.diagnostics);

        // Every engine's gate returns a typed error under the strict
        // configuration — none of these calls may panic.
        let err = lint::check_network_first(&net, &strict)
            .expect_err("ta gate must refuse the mutated model");
        assert!(err.to_string().contains(code), "{code}: {err}");
        assert!(
            tiga::GameSolver::check_first(&net, &strict).is_err(),
            "{code}: tiga"
        );
        assert!(
            smc::StatisticalChecker::check_first(&net, &strict).is_err(),
            "{code}: smc"
        );
        assert!(
            cora::PricedNetwork::new(build())
                .check_first(&strict)
                .is_err(),
            "{code}: cora"
        );

        // Error-severity findings block even the default configuration.
        if code == "TA002" {
            assert!(lint::check_network_first(&net, &LintConfig::default()).is_err());
        } else {
            assert!(lint::check_network_first(&net, &LintConfig::default()).is_ok());
        }
    }
}

#[test]
fn bip_rules_fire_exactly_once_and_gate_refuses() {
    let strict = LintConfig::strict();

    // BIP001: a port that appears in no interaction.
    let mut b = BipSystemBuilder::new();
    let mut c = b.component("C");
    let s0 = c.state("S0");
    let work = c.port("work");
    let lonely = c.port("lonely");
    c.transition(s0, s0, work);
    c.transition(s0, s0, lonely);
    c.done();
    b.rendezvous("go", &[work]);
    let sys = b.build();
    let report = lint::check_bip(&sys);
    assert_eq!(codes(&report), vec!["BIP001"], "{:?}", report.diagnostics);
    assert!(lint::check_bip_first(&sys, &strict).is_err());
    assert!(lint::check_bip_first(&sys, &LintConfig::default()).is_ok());

    // BIP002: a component state no transition path reaches.
    let mut b = BipSystemBuilder::new();
    let mut c = b.component("C");
    let s0 = c.state("S0");
    let orphan = c.state("Orphan");
    let work = c.port("work");
    c.transition(s0, s0, work);
    c.transition(orphan, s0, work);
    c.done();
    b.rendezvous("go", &[work]);
    let sys = b.build();
    let report = lint::check_bip(&sys);
    assert_eq!(codes(&report), vec!["BIP002"], "{:?}", report.diagnostics);
    assert!(lint::check_bip_first(&sys, &strict).is_err());
}

#[test]
fn modest_rules_fire_exactly_once_and_gate_refuses() {
    let strict = LintConfig::strict();

    // MOD001 (warning): an action shadowing a clock of the same name.
    let mut m = ModestModel::new();
    let _t = m.clock("t");
    let a = m.action("t");
    m.define("P", Process::act(a, Process::stop()));
    m.system(&["P"]);
    let report = lint::check_modest(&m);
    assert_eq!(codes(&report), vec!["MOD001"], "{:?}", report.diagnostics);
    assert!(lint::check_modest_first(&m, &strict).is_err());
    assert!(lint::check_modest_first(&m, &LintConfig::default()).is_ok());

    // MOD001 (error): calling a process that is never defined blocks
    // even the default configuration.
    let mut m = ModestModel::new();
    let a = m.action("a");
    m.define("P", Process::act(a, Process::call("Ghost")));
    m.system(&["P"]);
    let report = lint::check_modest(&m);
    assert_eq!(codes(&report), vec!["MOD001"], "{:?}", report.diagnostics);
    assert!(lint::check_modest_first(&m, &LintConfig::default()).is_err());

    // MOD002 (error): an assignment that is always outside the
    // variable's declared range.
    let mut m = ModestModel::new();
    let a = m.action("a");
    let x = m.decls_mut().int("x", 0, 5);
    m.define(
        "P",
        Process::act_with(
            a,
            vec![Assignment::Var(x, Expr::konst(99))],
            Process::stop(),
        ),
    );
    m.system(&["P"]);
    let report = lint::check_modest(&m);
    assert_eq!(codes(&report), vec!["MOD002"], "{:?}", report.diagnostics);
    assert!(lint::check_modest_first(&m, &LintConfig::default()).is_err());

    // MOD002 (error): interval arithmetic is exact in i128, so a
    // subtraction that overflows i64 upward is pinned above the target
    // range instead of wrapping past it.
    let mut m = ModestModel::new();
    let a = m.action("a");
    let big = m.decls_mut().int("big", i64::MIN, -4_000_000_000);
    let out = m.decls_mut().int("out", 0, 100);
    m.define(
        "P",
        Process::act_with(
            a,
            vec![Assignment::Var(out, Expr::konst(5) - Expr::var(big))],
            Process::stop(),
        ),
    );
    m.system(&["P"]);
    let report = lint::check_modest(&m);
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code == "MOD002" && d.message.contains("outside its declared range")),
        "{:?}",
        report.diagnostics
    );
    assert!(lint::check_modest_first(&m, &LintConfig::default()).is_err());

    // MOD003 (warning): a `when` guard that is provably false under the
    // declared variable ranges makes its branch unreachable. A warning
    // so that parameter instantiations with dead branches (`i < N-1`
    // with N = 1) still pass the default admission gate — slicing
    // treats such guards as dead edges, not as broken models.
    let mut m = ModestModel::new();
    let a = m.action("a");
    let x = m.decls_mut().int("x", 0, 5);
    m.define(
        "P",
        Process::when(
            Expr::var(x).gt(Expr::konst(100)),
            Process::act(a, Process::stop()),
        ),
    );
    m.system(&["P"]);
    let report = lint::check_modest(&m);
    assert_eq!(codes(&report), vec!["MOD003"], "{:?}", report.diagnostics);
    assert!(lint::check_modest_first(&m, &strict).is_err());
    assert!(lint::check_modest_first(&m, &LintConfig::default()).is_ok());
}

/// CORA001: negative cost rates / edge costs on a priced network. The
/// clean fixture passes the default gate; mutating either price kind
/// below zero turns into an error-level refusal from
/// `PricedNetwork::check_first` — the gate the priced and rare-event
/// engines run before any cost query.
#[test]
fn cora001_negative_prices_are_refused() {
    let fixture = || {
        let mut b = NetworkBuilder::new();
        let x = b.clock("x");
        let mut a = b.automaton("Job");
        let l0 = a.location_with_invariant("Work", vec![ClockAtom::le(x, 5)]);
        let l1 = a.location("Done");
        a.edge(l0, l1).guard_clock(ClockAtom::ge(x, 1)).done();
        a.edge(l1, l1).done();
        a.done();
        b.build()
    };

    // Clean: non-negative prices, no CORA001 finding.
    let mut clean = cora::PricedNetwork::new(fixture());
    clean.set_rate(AutomatonId(0), LocationId(0), 2);
    clean.set_edge_cost(AutomatonId(0), 0, 3);
    assert!(clean.lint_prices().is_empty());
    let report = clean.check_first(&LintConfig::default()).expect("clean");
    assert!(!codes(&report).contains(&"CORA001"));

    // Mutated: one negative rate and one negative edge cost. Both are
    // error-level, so even the default (non-strict) gate refuses.
    let mut bad = cora::PricedNetwork::new(fixture());
    bad.set_rate(AutomatonId(0), LocationId(0), -2);
    bad.set_edge_cost(AutomatonId(0), 0, -1);
    let found = bad.lint_prices();
    assert_eq!(found.len(), 2, "{found:?}");
    assert!(found.iter().all(|d| d.code == "CORA001"));
    let err = bad.check_first(&LintConfig::default()).unwrap_err();
    assert!(
        err.diagnostics.iter().any(|d| d.code == "CORA001"),
        "{err:?}"
    );
}

// ---------------------------------------------------------------------------
// Rule inventory: the README table and the registry must agree.
// ---------------------------------------------------------------------------

#[test]
fn readme_rule_table_matches_registry() {
    let readme = include_str!("../README.md");
    let documented: Vec<&str> = readme
        .lines()
        .filter_map(|line| {
            let cell = line.strip_prefix('|')?.split('|').next()?.trim();
            (cell.len() >= 5
                && (cell.starts_with("TA")
                    || cell.starts_with("BIP")
                    || cell.starts_with("MOD")
                    || cell.starts_with("CORA"))
                && cell
                    .chars()
                    .skip(cell.len() - 3)
                    .all(|c| c.is_ascii_digit()))
            .then_some(cell)
        })
        .collect();
    let registered: Vec<&str> = lint::rules().iter().map(|r| r.code).collect();
    assert_eq!(
        documented, registered,
        "README lint table out of sync with lint::rules()"
    );
}

// ---------------------------------------------------------------------------
// 3. Active-clock reduction: identical verdicts, smaller run reports.
// ---------------------------------------------------------------------------

#[test]
fn brp_run_report_shows_strictly_smaller_dbm_dimension() {
    let b = brp(2, 2, 1);
    // Unbounded properties read no clock, so the global clock `gt`
    // (never in a guard or invariant) is removed: DBM dim 6 -> 5.
    let reduced = Mcpta::try_build(&b.pta, &[], &Budget::unlimited());
    let report = reduced.report().clone();
    assert_eq!(report.dbm_dim_model, 6);
    assert_eq!(report.dbm_dim, 5);
    assert!(report.dbm_dim < report.dbm_dim_model);

    // A time-bounded property protects `gt`, keeping all clocks.
    let atoms = [ClockAtom::le(b.gt, 30)];
    let full = Mcpta::try_build(&b.pta, &atoms, &Budget::unlimited());
    assert_eq!(full.report().dbm_dim, 6);

    // Verdicts are identical with and without the dead clock.
    let reduced = reduced.into_value().expect("unlimited budget");
    let full = full.into_value().expect("unlimited budget");
    for goal in [b.pa_goal(), b.pb_goal(), b.success()] {
        let p_red = reduced.pmax(&goal);
        let p_full = full.pmax(&goal);
        assert!(
            (p_red - p_full).abs() < 1e-9,
            "pmax diverged: {p_red} vs {p_full}"
        );
    }
}

#[test]
fn train_gate_verdicts_identical_with_and_without_reduction() {
    let tg = train_gate(2);
    let mut reduced = ModelChecker::new(&tg.net);
    let mut full = ModelChecker::new(&tg.net).without_reduction();

    for goal in [tg.safety(), tg.cross(0), tg.cross(1), tg.appr(1)] {
        assert_eq!(
            reduced.reachable(&goal).reachable,
            full.reachable(&goal).reachable
        );
    }
    assert_eq!(
        reduced.always(&tg.safety()).0.holds(),
        full.always(&tg.safety()).0.holds()
    );
    assert_eq!(
        reduced.deadlock_free().0.holds(),
        full.deadlock_free().0.holds()
    );
}

// ---------------------------------------------------------------------------
// Property: Network::reduced() preserves location reachability on random
// networks carrying a dead clock.
// ---------------------------------------------------------------------------

const LOCS: usize = 4;

#[derive(Debug, Clone)]
struct EdgeSpec {
    from: usize,
    to: usize,
    lower: Option<i64>,
    upper: Option<i64>,
    reset: bool,
    reset_dead: bool,
}

fn arb_edges() -> impl Strategy<Value = Vec<EdgeSpec>> {
    prop::collection::vec(
        (
            0..LOCS,
            0..LOCS,
            prop::option::of(0..4_i64),
            prop::option::of(0..6_i64),
            prop::bool::ANY,
            prop::bool::ANY,
        )
            .prop_map(|(from, to, lower, upper, reset, reset_dead)| EdgeSpec {
                from,
                to,
                lower,
                upper,
                reset,
                reset_dead,
            }),
        1..8,
    )
}

fn arb_invariants() -> impl Strategy<Value = Vec<Option<i64>>> {
    prop::collection::vec(prop::option::of(1..8_i64), LOCS)
}

/// Builds a one-automaton network over a live clock `x` and a dead
/// clock `d` that is reset on some edges but read nowhere.
fn build_with_dead_clock(edges: &[EdgeSpec], invariants: &[Option<i64>]) -> Network {
    let mut b = NetworkBuilder::new();
    let x = b.clock("x");
    let d = b.clock("d");
    let mut a = b.automaton("A");
    let locs: Vec<LocationId> = (0..LOCS)
        .map(|i| match invariants[i] {
            Some(c) => a.location_with_invariant(&format!("L{i}"), vec![ClockAtom::le(x, c)]),
            None => a.location(&format!("L{i}")),
        })
        .collect();
    for e in edges {
        let mut eb = a.edge(locs[e.from], locs[e.to]);
        if let Some(lo) = e.lower {
            eb = eb.guard_clock(ClockAtom::ge(x, lo));
        }
        if let Some(hi) = e.upper {
            eb = eb.guard_clock(ClockAtom::le(x, hi));
        }
        if e.reset {
            eb = eb.reset(x, 0);
        }
        if e.reset_dead {
            eb = eb.reset(d, 0);
        }
        eb.done();
    }
    a.done();
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reduction_preserves_location_reachability(
        edges in arb_edges(),
        invariants in arb_invariants(),
    ) {
        let net = build_with_dead_clock(&edges, &invariants);
        // The dead clock is read nowhere, so it must always be removed.
        let reduction = net.reduced();
        prop_assert_eq!(reduction.dim(), net.dim() - 1);
        prop_assert_eq!(reduction.removed(), &["d".to_string()]);

        let mut reduced = ModelChecker::new(&net);
        let mut full = ModelChecker::new(&net).without_reduction();
        for loc in 0..LOCS {
            let goal = StateFormula::at(AutomatonId(0), LocationId(loc));
            prop_assert_eq!(
                reduced.reachable(&goal).reachable,
                full.reachable(&goal).reachable,
                "location L{} diverged under reduction", loc
            );
        }
    }
}
