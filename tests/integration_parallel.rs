//! Integration test: the parallel engines agree with the sequential
//! reference paths. Parallel zone-graph reachability must return the same
//! verdict (and a valid witness trace) as the sequential oracle on the
//! train-gate at several thread counts, and parallel statistical model
//! checking must be run-to-run deterministic for a fixed seed and thread
//! count.

use tempo_core::smc::StatisticalChecker;
use tempo_core::ta::{Explorer, ModelChecker, Network, StateFormula, Trace};
use tempo_core::tiga::GameSolver;
use tempo_models::{train_gate, train_gate_game};

/// Replays a witness trace against the explorer: it must start in the
/// initial symbolic state, follow real transitions, and end in a state
/// where the goal holds.
fn assert_valid_witness(net: &Network, trace: &Trace, goal: &StateFormula) {
    let explorer = Explorer::new(net);
    let first = &trace.steps[0];
    assert!(
        first.action.is_none(),
        "trace must start at the initial state"
    );
    assert_eq!(first.state, explorer.initial_state());
    for pair in trace.steps.windows(2) {
        let (prev, step) = (&pair[0], &pair[1]);
        let action = step
            .action
            .as_ref()
            .expect("non-initial step has an action");
        assert!(
            explorer
                .successors(&prev.state)
                .iter()
                .any(|(a, s)| a == action && s == &step.state),
            "every step must be a real transition of the zone graph"
        );
    }
    let last = &trace.steps[trace.steps.len() - 1].state;
    assert!(
        goal.holds_somewhere(net, last),
        "trace must end in the goal"
    );
}

#[test]
fn parallel_reach_matches_sequential_on_train_gate() {
    for n in 2..=3 {
        let tg = train_gate(n);
        let goal = StateFormula::and(vec![
            StateFormula::at(tg.trains[0], tg.train_locs.stop),
            StateFormula::at(tg.trains[1], tg.train_locs.cross),
        ]);
        let seq = ModelChecker::new(&tg.net).reachable(&goal);
        assert!(seq.reachable, "N={n}: the goal is reachable sequentially");
        for threads in [2, 3, 4] {
            let par = ModelChecker::new(&tg.net)
                .with_threads(threads)
                .reachable(&goal);
            assert_eq!(
                par.reachable, seq.reachable,
                "N={n}, threads={threads}: verdict must match the oracle"
            );
            let trace = par.trace.expect("reachable result carries a witness");
            assert_valid_witness(&tg.net, &trace, &goal);
            assert!(par.stats.explored > 0, "stats must count explored states");
            assert!(par.stats.stored > 0, "stats must count stored zones");
        }
    }
}

#[test]
fn parallel_safety_and_deadlock_match_sequential() {
    for n in 2..=3 {
        let tg = train_gate(n);
        let (seq_safe, seq_stats) = ModelChecker::new(&tg.net).always(&tg.safety());
        let (seq_dl, _) = ModelChecker::new(&tg.net).deadlock_free();
        for threads in [2, 3, 4] {
            let (par_safe, par_stats) = ModelChecker::new(&tg.net)
                .with_threads(threads)
                .always(&tg.safety());
            assert_eq!(
                par_safe.holds(),
                seq_safe.holds(),
                "N={n}, threads={threads}"
            );
            // An exhausted search reaches the same inclusion-reduced
            // fixpoint regardless of exploration order, so the passed-list
            // size must agree with the sequential engine exactly.
            assert_eq!(
                par_stats.stored, seq_stats.stored,
                "N={n}, threads={threads}: fixpoint size must match"
            );
            let (par_dl, dl_stats) = ModelChecker::new(&tg.net)
                .with_threads(threads)
                .deadlock_free();
            assert_eq!(par_dl.holds(), seq_dl.holds(), "N={n}, threads={threads}");
            assert!(dl_stats.stored > 0);
        }
    }
}

#[test]
fn parallel_smc_is_run_to_run_deterministic() {
    let tg = train_gate(3);
    for threads in [1, 2, 3, 8] {
        let run = |seed: u64| {
            let mut smc = StatisticalChecker::new(&tg.net, tg.rates(), seed).with_threads(threads);
            let p = smc.probability(&tg.cross(0), 100.0, 120, 0.95);
            let cdf = smc.cdf(&tg.cross(0), 100.0, 120);
            let grid: Vec<f64> = (1..=10).map(|k| 10.0 * k as f64).collect();
            (p, cdf.hits(), cdf.series(&grid))
        };
        let (p1, hits1, series1) = run(42);
        let (p2, hits2, series2) = run(42);
        assert_eq!(p1, p2, "threads={threads}: estimates must be bitwise equal");
        assert_eq!(hits1, hits2, "threads={threads}");
        assert_eq!(series1, series2, "threads={threads}: CDF must be identical");
        let (p3, _, _) = run(43);
        assert_ne!(
            (p1.successes, p1.runs),
            (p3.successes, usize::MAX),
            "sanity: a different seed still runs"
        );
    }
}

#[test]
fn parallel_smc_spreads_work_and_keeps_budget() {
    // The run budget must be preserved exactly under partitioning, and the
    // merged estimate must stay in agreement with the sequential one at
    // the statistical level (same model, same number of runs).
    let tg = train_gate(2);
    let runs = 200;
    let mut seq = StatisticalChecker::new(&tg.net, tg.rates(), 7);
    let p_seq = seq.probability(&tg.cross(0), 100.0, runs, 0.95);
    let mut par = StatisticalChecker::new(&tg.net, tg.rates(), 7).with_threads(4);
    let p_par = par.probability(&tg.cross(0), 100.0, runs, 0.95);
    assert_eq!(p_seq.runs, runs);
    assert_eq!(p_par.runs, runs, "partitioned budget must sum to the total");
    assert!(
        (p_seq.mean - p_par.mean).abs() < 0.15,
        "sequential ({}) and parallel ({}) estimates must agree statistically",
        p_seq.mean,
        p_par.mean
    );
    let safe = par.count_globally(&tg.safety(), 150.0, 160);
    assert_eq!(safe, 160, "mutual exclusion holds on every simulated run");
}

#[test]
fn parallel_game_solver_matches_sequential() {
    let g = train_gate_game(2);
    let seq = GameSolver::new(&g.net).solve_safety(&g.collision());
    for threads in [2, 4] {
        let par = GameSolver::new(&g.net)
            .with_threads(threads)
            .solve_safety(&g.collision());
        assert_eq!(par.winning, seq.winning, "threads={threads}");
        assert_eq!(
            par.strategy.size(),
            seq.strategy.size(),
            "threads={threads}: the winning region is a unique fixpoint"
        );
    }
}
