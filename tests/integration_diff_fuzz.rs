//! Differential fuzzing of the frontend/engine pipeline: random
//! well-formed `tempo-lang` models are elaborated through the real
//! frontend (render → parse → build) and the same question is answered
//! by independent engines, routed through the analysis service at
//! 1–4 workers. Any disagreement is a bug in a translation, an engine,
//! or the service — the point of the paper's "single formalism,
//! multiple solutions" philosophy as a fuzzing oracle.
//!
//! Cross-checks per generated model:
//! * reachability: symbolic TA on `to_network` vs symbolic TA on the
//!   `mctau` translation of `to_modest`, vs the generator's own ground
//!   truth;
//! * probability: `mcpta` (digital-clocks MDP, exact) `Pmax` vs the
//!   statistical checker's Wilson interval, which must contain it;
//! * service determinism: both worker counts must render bit-identical
//!   verdicts.

use proptest::{proptest, ProptestConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::sync::Arc;
use tempo_core::lang::ast::Formula;
use tempo_core::lang::{
    build, lower_formula_network, lower_formula_pta, parse, to_modest, to_network,
};
use tempo_core::mdp::Opt;
use tempo_core::modest::{compile, Mctau};
use tempo_core::obs::{Budget, ExploreConfig};
use tempo_core::smc::RatePolicy;
use tempo_core::svc::{AnalysisService, JobKind, JobRequest, JobVerdict, ServiceConfig};

/// A generated chain-handshake model plus its ground truth.
struct Case {
    source: String,
    /// Whether `P.Done` is reachable (the receiver chain is complete).
    reachable: bool,
    /// A per-run time bound that surely covers a complete chain.
    smc_bound: f64,
}

/// Builds a sender/receiver chain over `k` channels with per-step
/// deadlines (`inv {x <= d}`) and guards (`when {x >= g}`, `g <= d`).
/// With probability ~0.3 the receiver chain is truncated by one step,
/// making the sender's final state unreachable — the ground truth every
/// engine must agree on.
fn gen_case(rng: &mut StdRng) -> Case {
    let k = rng.gen_range(1..=3usize);
    let channels = &["a", "b", "c"][..k];
    let broken = k > 1 && rng.gen_bool(0.3);
    let mut src = String::new();
    let _ = writeln!(src, "channel {}", channels.join(", "));
    let _ = writeln!(src, "clock x");
    let mut total_deadline = 0i64;

    // Sender: P -> S1 -> ... -> Done, one step per channel.
    for (i, ch) in channels.iter().enumerate() {
        let name = if i == 0 {
            "P".to_owned()
        } else {
            format!("S{i}")
        };
        let next = if i + 1 == k {
            "Done".to_owned()
        } else {
            format!("S{}", i + 1)
        };
        let d = rng.gen_range(1..=4i64);
        total_deadline += d;
        let g = rng.gen_range(0..=d);
        let guard = if g > 0 {
            format!("when {{x >= {g}}} ")
        } else {
            String::new()
        };
        let _ = writeln!(src, "process {name} = inv {{x <= {d}}} {guard}{ch}! {{x := 0}} -> {next}");
    }
    let _ = writeln!(src, "process Done = STOP");

    // Receiver: Q -> T1 -> ... -> STOP. The broken variant crosses the
    // last two receives (every channel keeps both endpoints, which the
    // probabilistic engines require, but the crossed order deadlocks
    // the chain before the sender's final step).
    let mut order: Vec<&str> = channels.to_vec();
    if broken {
        order.swap(k - 2, k - 1);
    }
    for (i, ch) in order.iter().enumerate() {
        let name = if i == 0 {
            "Q".to_owned()
        } else {
            format!("T{i}")
        };
        let next = if i + 1 == k {
            "STOP".to_owned()
        } else {
            format!("T{}", i + 1)
        };
        let _ = writeln!(src, "process {name} = {ch}? -> {next}");
    }

    let _ = writeln!(src, "\nsystem P || {{{}}} Q", channels.join(", "));
    Case {
        source: src,
        reachable: !broken,
        #[allow(clippy::cast_precision_loss)]
        smc_bound: (total_deadline + 5) as f64,
    }
}

fn submit(svc: &AnalysisService, kind: JobKind) -> JobVerdict {
    svc.submit(JobRequest {
        tenant: "fuzz".to_owned(),
        priority: 0,
        budget: Budget::unlimited(),
        kind,
    })
    .expect("admitted")
    .wait()
    .expect("job succeeds")
    .verdict
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Engine-vs-engine agreement on 48 generated models.
    #[test]
    fn engines_agree_on_generated_models(seed in 0u64..1_000_000u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let case = gen_case(&mut rng);
        let model = parse(&case.source).unwrap_or_else(|e| {
            panic!("generated model must parse: {e}\n{}", case.source)
        });
        let set = build(&model).unwrap_or_else(|e| {
            panic!("generated model must elaborate: {e}\n{}", case.source)
        });
        let goal = Formula::AtLoc(
            tempo_core::lang::ast::Ident::new("P"),
            tempo_core::lang::ast::Ident::new("Done"),
        );

        // Substrates, exactly as the CLI builds them.
        let net = Arc::new(to_network(&set).expect("network substrate"));
        let net_goal = lower_formula_network(&set, &net, &goal).expect("network goal");
        let pta = Arc::new(compile(&to_modest(&set).expect("modest substrate")));
        let pta_goal = lower_formula_pta(&set, &pta, &goal).expect("pta goal");
        let mctau_net = Arc::new(Mctau::new(&pta).network().clone());

        // Two services with different worker counts; verdicts must be
        // bit-identical across them.
        let w = 1 + (seed % 4) as usize;
        let services = [
            AnalysisService::new(ServiceConfig { workers: w, ..ServiceConfig::default() }),
            AnalysisService::new(ServiceConfig { workers: 1 + (w % 4), ..ServiceConfig::default() }),
        ];
        let mut rendered: Vec<Vec<String>> = Vec::new();
        for svc in &services {
            // 1. Symbolic TA reachability on the direct translation.
            let ta = submit(svc, JobKind::Reach {
                net: Arc::clone(&net),
                goal: net_goal.clone(),
                explore: ExploreConfig::default(),
            });
            // 2. Symbolic TA reachability on the mctau translation.
            let mctau = submit(svc, JobKind::Reach {
                net: Arc::clone(&mctau_net),
                goal: pta_goal.clone(),
                explore: ExploreConfig::default(),
            });
            // 3. Exact Pmax on the digital-clocks MDP.
            let mcpta = submit(svc, JobKind::McptaReach {
                pta: Arc::clone(&pta),
                opt: Opt::Max,
                goal: pta_goal.clone(),
                epsilon: 1e-9,
            });
            // 4. Statistical estimation under the stochastic semantics.
            let smc = submit(svc, JobKind::Probability {
                net: Arc::clone(&net),
                rates: RatePolicy::new(),
                seed,
                goal: net_goal.clone(),
                bound: case.smc_bound,
                runs: 200,
                confidence: 0.95,
            });

            let JobVerdict::Reachable(ta_reach) = ta else {
                panic!("ta job returned {ta:?}")
            };
            let JobVerdict::Reachable(mctau_reach) = mctau else {
                panic!("mctau job returned {mctau:?}")
            };
            let JobVerdict::McptaValue(pmax) = mcpta else {
                panic!("mcpta job returned {mcpta:?}")
            };
            let JobVerdict::Probability(est) = &smc else {
                panic!("smc job returned {smc:?}")
            };

            assert_eq!(
                ta_reach, case.reachable,
                "ta engine disagrees with ground truth\n{}", case.source
            );
            assert_eq!(
                mctau_reach, ta_reach,
                "mctau disagrees with ta on reachability\n{}", case.source
            );
            // With no probabilistic branching Pmax is exactly 0 or 1 and
            // must match reachability ...
            let expected = if case.reachable { 1.0 } else { 0.0 };
            assert!(
                (pmax - expected).abs() < 1e-6,
                "mcpta Pmax {pmax} disagrees with reachability {}\n{}",
                case.reachable, case.source
            );
            // ... and the statistical Wilson interval must contain it.
            assert!(
                est.lower - 1e-9 <= pmax && pmax <= est.upper + 1e-9,
                "mcpta Pmax {pmax} outside smc interval [{}, {}] ({}/{} runs)\n{}",
                est.lower, est.upper, est.successes, est.runs, case.source
            );

            rendered.push(vec![
                JobVerdict::Reachable(ta_reach).render(),
                JobVerdict::Reachable(mctau_reach).render(),
                JobVerdict::McptaValue(pmax).render(),
                smc.render(),
            ]);
        }
        assert_eq!(
            rendered[0], rendered[1],
            "verdicts differ across worker counts\n{}", case.source
        );
        for svc in services {
            svc.shutdown();
        }
    }
}
